/** @file Unit tests for the stride prefetcher. */

#include <gtest/gtest.h>

#include "prefetch/stride.hh"

namespace stms
{
namespace
{

/** Records issued prefetches without any timing. */
class RecordingPort : public PrefetchPort
{
  public:
    IssueResult
    issuePrefetch(Prefetcher &, CoreId, Addr block) override
    {
        issued.push_back(block);
        return IssueResult::Issued;
    }
    void
    metaRequest(TrafficClass cls, Addr, std::uint32_t blocks,
                TimedCallback done) override
    {
        metaBlocks[static_cast<std::size_t>(cls)] += blocks;
        if (done)
            done(now_);
    }
    Cycle now() const override { return now_; }
    std::uint32_t
    prefetchRoom(const Prefetcher &, CoreId) const override
    {
        return 16;
    }

    std::vector<Addr> issued;
    std::array<std::uint64_t, kNumTrafficClasses> metaBlocks{};
    Cycle now_ = 0;
};

TEST(Stride, DetectsUnitStrideAndRunsAhead)
{
    RecordingPort port;
    StridePrefetcher stride;
    stride.attach(port, 1, 0);
    for (int i = 0; i < 4; ++i)
        stride.onOffchipRead(0, blockAddress(100 + i));
    EXPECT_GT(stride.launches(), 0u);
    ASSERT_FALSE(port.issued.empty());
    // Prefetches run ahead of the last miss.
    for (Addr addr : port.issued)
        EXPECT_GT(addr, blockAddress(103 - 4));
    EXPECT_EQ(port.issued[0], blockAddress(103));  // 102 + stride 1... first launch from miss 102.
}

TEST(Stride, DetectsLargerStrides)
{
    RecordingPort port;
    StridePrefetcher stride;
    stride.attach(port, 1, 0);
    for (int i = 0; i < 5; ++i)
        stride.onOffchipRead(0, blockAddress(1000 + 7 * i));
    ASSERT_FALSE(port.issued.empty());
    // Issued addresses continue the 7-block stride.
    EXPECT_EQ(blockNumber(port.issued.back()) % 7, 1000u % 7);
}

TEST(Stride, IgnoresRandomMisses)
{
    RecordingPort port;
    StridePrefetcher stride;
    stride.attach(port, 1, 0);
    // Far-apart random addresses never match a region.
    Addr addrs[] = {blockAddress(10), blockAddress(5000),
                    blockAddress(90000), blockAddress(1234567),
                    blockAddress(777777)};
    for (Addr addr : addrs)
        stride.onOffchipRead(0, addr);
    EXPECT_TRUE(port.issued.empty());
}

TEST(Stride, CoresAreIndependent)
{
    RecordingPort port;
    StridePrefetcher stride;
    stride.attach(port, 2, 0);
    // Interleave: core 0 streams, core 1 wanders.
    for (int i = 0; i < 6; ++i) {
        stride.onOffchipRead(0, blockAddress(100 + i));
        stride.onOffchipRead(1, blockAddress(100000 + 997 * i));
    }
    EXPECT_GT(stride.launches(), 0u);
}

TEST(Stride, ResetStatsClearsLaunches)
{
    RecordingPort port;
    StridePrefetcher stride;
    stride.attach(port, 1, 0);
    for (int i = 0; i < 6; ++i)
        stride.onOffchipRead(0, blockAddress(200 + i));
    EXPECT_GT(stride.launches(), 0u);
    stride.resetStats();
    EXPECT_EQ(stride.launches(), 0u);
}

} // namespace
} // namespace stms
