/** @file Unit tests for the fully-associative prefetch buffer. */

#include <gtest/gtest.h>

#include "prefetch/prefetch_buffer.hh"

namespace stms
{
namespace
{

TEST(PrefetchBuffer, InsertConsumeCycle)
{
    PrefetchBuffer buffer(4);
    EXPECT_FALSE(buffer.contains(0x1000));
    EXPECT_FALSE(buffer.insert(0x1000).has_value());
    EXPECT_TRUE(buffer.contains(0x1000));
    EXPECT_TRUE(buffer.consume(0x1000));
    EXPECT_FALSE(buffer.contains(0x1000));
    EXPECT_FALSE(buffer.consume(0x1000));
}

TEST(PrefetchBuffer, LruEvictionOnOverflow)
{
    PrefetchBuffer buffer(2);
    buffer.insert(blockAddress(1));
    buffer.insert(blockAddress(2));
    auto evicted = buffer.insert(blockAddress(3));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, blockAddress(1));
    EXPECT_TRUE(buffer.contains(blockAddress(2)));
    EXPECT_TRUE(buffer.contains(blockAddress(3)));
}

TEST(PrefetchBuffer, DuplicateInsertRefreshesRecency)
{
    PrefetchBuffer buffer(2);
    buffer.insert(blockAddress(1));
    buffer.insert(blockAddress(2));
    EXPECT_FALSE(buffer.insert(blockAddress(1)).has_value());
    auto evicted = buffer.insert(blockAddress(3));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, blockAddress(2));  // 1 was refreshed.
}

TEST(PrefetchBuffer, SubBlockAddressesAlias)
{
    PrefetchBuffer buffer(4);
    buffer.insert(0x1008);
    EXPECT_TRUE(buffer.contains(0x1000));
    EXPECT_TRUE(buffer.consume(0x103F));
}

TEST(PrefetchBuffer, SizeAndRoomTrackOccupancy)
{
    PrefetchBuffer buffer(3);
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_EQ(buffer.room(), 3u);
    buffer.insert(blockAddress(1));
    buffer.insert(blockAddress(2));
    EXPECT_EQ(buffer.size(), 2u);
    EXPECT_EQ(buffer.room(), 1u);
    buffer.consume(blockAddress(1));
    EXPECT_EQ(buffer.room(), 2u);
}

TEST(PrefetchBuffer, InvalidateDropsSilently)
{
    PrefetchBuffer buffer(2);
    buffer.insert(blockAddress(9));
    EXPECT_TRUE(buffer.invalidate(blockAddress(9)));
    EXPECT_FALSE(buffer.invalidate(blockAddress(9)));
}

} // namespace
} // namespace stms
