/** @file Unit tests for the fixed-depth correlation prefetcher. */

#include <gtest/gtest.h>

#include "prefetch/correlation_table.hh"

namespace stms
{
namespace
{

class RecordingPort : public PrefetchPort
{
  public:
    IssueResult
    issuePrefetch(Prefetcher &, CoreId, Addr block) override
    {
        issued.push_back(block);
        return IssueResult::Issued;
    }
    void
    metaRequest(TrafficClass cls, Addr, std::uint32_t blocks,
                TimedCallback done) override
    {
        metaBlocks[static_cast<std::size_t>(cls)] += blocks;
        if (done)
            done(now_);
    }
    Cycle now() const override { return now_; }
    std::uint32_t prefetchRoom(const Prefetcher &,
                               CoreId) const override
    {
        return 16;
    }

    std::vector<Addr> issued;
    std::array<std::uint64_t, kNumTrafficClasses> metaBlocks{};
    Cycle now_ = 0;
};

CorrelationConfig
onchipDepth(std::uint32_t depth)
{
    CorrelationConfig config;
    config.depth = depth;
    config.offchipMeta = false;
    return config;
}

TEST(Correlation, LearnsFixedDepthSuccessorSequence)
{
    RecordingPort port;
    CorrelationPrefetcher corr(onchipDepth(3));
    corr.attach(port, 1, 0);
    // Miss sequence A B C D: entry for A = {B, C, D}.
    for (Addr block : {10, 20, 30, 40})
        corr.onOffchipRead(0, blockAddress(static_cast<Addr>(block)));
    port.issued.clear();
    corr.onOffchipRead(0, blockAddress(10));
    ASSERT_EQ(port.issued.size(), 3u);
    EXPECT_EQ(port.issued[0], blockAddress(20));
    EXPECT_EQ(port.issued[1], blockAddress(30));
    EXPECT_EQ(port.issued[2], blockAddress(40));
}

TEST(Correlation, DepthBoundsPrefetchCount)
{
    for (std::uint32_t depth : {1u, 2u, 6u}) {
        RecordingPort port;
        CorrelationPrefetcher corr(onchipDepth(depth));
        corr.attach(port, 1, 0);
        for (Addr i = 0; i < 20; ++i)
            corr.onOffchipRead(0, blockAddress(100 + i));
        port.issued.clear();
        corr.onOffchipRead(0, blockAddress(100));
        EXPECT_EQ(port.issued.size(), depth);
    }
}

TEST(Correlation, OffchipMetaChargesLookupAndRmwUpdate)
{
    RecordingPort port;
    CorrelationConfig config;
    config.depth = 2;
    config.offchipMeta = true;
    CorrelationPrefetcher corr(config);
    corr.attach(port, 1, 0);
    for (Addr i = 0; i < 10; ++i)
        corr.onOffchipRead(0, blockAddress(500 + i));
    // Every miss does one lookup block read...
    EXPECT_EQ(port.metaBlocks[static_cast<std::size_t>(
                  TrafficClass::MetaLookup)],
              10u);
    // ...and each completed window (misses 3..10 = 8 windows for
    // depth 2) a read + write update.
    EXPECT_EQ(port.metaBlocks[static_cast<std::size_t>(
                  TrafficClass::MetaUpdate)],
              2u * corr.updates());
    EXPECT_GT(corr.updates(), 0u);
}

TEST(Correlation, EpochModeSuppressesBackToBackLookups)
{
    RecordingPort port;
    CorrelationConfig config;
    config.depth = 2;
    config.offchipMeta = true;
    config.epochMode = true;
    config.epochGap = 100;
    CorrelationPrefetcher corr(config);
    corr.attach(port, 1, 0);

    port.now_ = 1;  // Nonzero so the first lookup fires.
    corr.onOffchipRead(0, blockAddress(1));
    corr.onOffchipRead(0, blockAddress(2));  // Same epoch: no lookup.
    corr.onOffchipRead(0, blockAddress(3));
    EXPECT_EQ(corr.lookups(), 1u);
    port.now_ = 200;  // New epoch.
    corr.onOffchipRead(0, blockAddress(4));
    EXPECT_EQ(corr.lookups(), 2u);
}

TEST(Correlation, NonEpochLooksUpEveryMiss)
{
    RecordingPort port;
    CorrelationPrefetcher corr(onchipDepth(2));
    corr.attach(port, 1, 0);
    for (Addr i = 0; i < 7; ++i)
        corr.onOffchipRead(0, blockAddress(i));
    EXPECT_EQ(corr.lookups(), 7u);
}

TEST(Correlation, SequenceUpdatesOverwriteStale)
{
    RecordingPort port;
    CorrelationPrefetcher corr(onchipDepth(2));
    corr.attach(port, 1, 0);
    // First A -> {B, C}; later A -> {X, Y}.
    for (Addr block : {1, 2, 3})
        corr.onOffchipRead(0, blockAddress(static_cast<Addr>(block)));
    for (Addr block : {1, 8, 9})
        corr.onOffchipRead(0, blockAddress(static_cast<Addr>(block)));
    port.issued.clear();
    corr.onOffchipRead(0, blockAddress(1));
    ASSERT_EQ(port.issued.size(), 2u);
    EXPECT_EQ(port.issued[0], blockAddress(8));
    EXPECT_EQ(port.issued[1], blockAddress(9));
}

} // namespace
} // namespace stms
