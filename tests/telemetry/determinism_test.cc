/** @file Telemetry determinism: tracing and sampling are observers.
 *
 *  The ISSUE-8 contract, verified here at the runner layer (the CI
 *  smoke job repeats it end-to-end through the driver binary):
 *
 *   - a sweep with --trace-out and --sample-every produces a report
 *     byte-identical to an uninstrumented sweep, across
 *     threads {1,2,4} x pipeline {off,on};
 *   - sampler epochs are a pure function of the access stream, so
 *     for fixed seeds the sampled series is identical across
 *     repeats, thread counts, and schedules.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "driver/registry.hh"
#include "driver/runner.hh"
#include "driver/trace_cache.hh"
#include "telemetry/sampler.hh"
#include "telemetry/trace_writer.hh"

namespace stms::driver
{
namespace
{

namespace fs = std::filesystem;

constexpr const char *kExperiment = "table2";
constexpr const char *kRecords = "2048";
constexpr std::uint64_t kSampleEvery = 512;

Options
tinyOptions()
{
    Options options;
    options.set("records", kRecords);
    return options;
}

const Experiment &
experiment()
{
    const Experiment *found =
        ExperimentRegistry::global().find(kExperiment);
    EXPECT_NE(found, nullptr);
    return *found;
}

/** Run the experiment and return the report JSON — the same document
 *  the driver emits under --no-timing --json (timing is attached
 *  separately by the CLI and never part of Report::toJson()). */
std::string
sweepJson(std::uint32_t threads, bool pipeline, bool telemetry,
          ExecStats *stats = nullptr)
{
    RunnerConfig config;
    config.threads = threads;
    config.pipeline = pipeline;
    config.sampleEvery = telemetry ? kSampleEvery : 0;
    config.progress = telemetry::ProgressMode::Off;

    TraceCache cache;
    ExperimentRunner runner(cache, config);

    if (!telemetry)
        return runner.run(experiment(), tinyOptions(), stats).toJson();

    const std::string path =
        (fs::temp_directory_path() /
         ("stms_determinism_" + std::to_string(threads) +
          (pipeline ? "_pipe" : "_serial") + ".json"))
            .string();
    telemetry::TraceSink sink(path);
    telemetry::installTraceSink(&sink);
    const std::string json =
        runner.run(experiment(), tinyOptions(), stats).toJson();
    telemetry::installTraceSink(nullptr);
    EXPECT_GT(sink.eventCount(), 0u)
        << "instrumented sweep recorded no trace events";
    std::string error;
    EXPECT_TRUE(sink.close(error)) << error;
    fs::remove(path);
    return json;
}

/** Flatten every run's sampled series into one comparable string. */
std::string
sampledSeries(std::uint32_t threads, bool pipeline)
{
    ExecStats stats;
    sweepJson(threads, pipeline, true, &stats);
    EXPECT_EQ(stats.sampleEvery, kSampleEvery);
    EXPECT_FALSE(stats.sampleColumns.empty());

    std::ostringstream out;
    for (const RunTiming &run : stats.runs) {
        out << run.id << ":";
        for (const auto &row : run.samples.rows) {
            out << " [" << row.accesses << "," << row.cycle;
            for (const double value : row.values)
                out << "," << value;
            out << "]";
        }
        out << "\n";
    }
    EXPECT_NE(out.str().find('['), std::string::npos)
        << "sweep produced no sampled rows";
    return out.str();
}

TEST(TelemetryDeterminism, ReportBytesUnchangedByInstrumentation)
{
    // One uninstrumented reference; every schedule must match it.
    const std::string reference = sweepJson(1, false, false);
    ASSERT_FALSE(reference.empty());

    for (const std::uint32_t threads : {1u, 2u, 4u}) {
        for (const bool pipeline : {false, true}) {
            EXPECT_EQ(sweepJson(threads, pipeline, false), reference)
                << "threads=" << threads << " pipeline=" << pipeline
                << " (uninstrumented)";
            EXPECT_EQ(sweepJson(threads, pipeline, true), reference)
                << "threads=" << threads << " pipeline=" << pipeline
                << " (trace + sampler enabled)";
        }
    }
}

TEST(TelemetryDeterminism, SampledEpochsDeterministicAcrossSchedules)
{
    const std::string reference = sampledSeries(1, false);
    EXPECT_EQ(sampledSeries(1, false), reference) << "repeat run";
    EXPECT_EQ(sampledSeries(4, false), reference) << "threads=4";
    EXPECT_EQ(sampledSeries(2, true), reference) << "pipelined";
}

} // namespace
} // namespace stms::driver
