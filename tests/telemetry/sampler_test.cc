/** @file Unit tests for the epoch sampler: probe registry, row
 *  capture, the warmup discard boundary, and the sweep-wide
 *  --sample-every default. */

#include <gtest/gtest.h>

#include "telemetry/sampler.hh"

namespace stms::telemetry
{
namespace
{

TEST(EpochSampler, DisabledByDefault)
{
    EpochSampler sampler;
    EXPECT_FALSE(sampler.enabled());
    EXPECT_EQ(sampler.every(), 0u);
    EXPECT_TRUE(sampler.series().empty());
}

TEST(EpochSampler, RegistrationOrderDefinesColumns)
{
    EpochSampler sampler;
    sampler.configure(1024);
    ASSERT_TRUE(sampler.enabled());

    double coverage = 0.25;
    std::uint64_t reads = 100;
    sampler.addCounter("coverage", [&] { return coverage; });
    sampler.addCounter("offchip_reads",
                       [&] { return static_cast<double>(reads); });

    sampler.sample(1024, 5000);
    coverage = 0.5;
    reads = 250;
    sampler.sample(2048, 11000);

    const SampleSeries &series = sampler.series();
    EXPECT_EQ(series.every, 1024u);
    ASSERT_EQ(series.columns.size(), 2u);
    EXPECT_EQ(series.columns[0], "coverage");
    EXPECT_EQ(series.columns[1], "offchip_reads");
    ASSERT_EQ(series.rows.size(), 2u);
    EXPECT_EQ(series.rows[0].accesses, 1024u);
    EXPECT_EQ(series.rows[0].cycle, 5000u);
    EXPECT_DOUBLE_EQ(series.rows[0].values[0], 0.25);
    EXPECT_DOUBLE_EQ(series.rows[0].values[1], 100.0);
    EXPECT_DOUBLE_EQ(series.rows[1].values[0], 0.5);
    EXPECT_DOUBLE_EQ(series.rows[1].values[1], 250.0);
}

TEST(EpochSampler, DiscardRowsMarksWarmupBoundary)
{
    EpochSampler sampler;
    sampler.configure(64);
    sampler.addCounter("x", [] { return 1.0; });
    sampler.sample(64, 100);
    sampler.sample(128, 200);
    ASSERT_EQ(sampler.series().rows.size(), 2u);

    // Warmup ends: rows go, the registry stays.
    sampler.discardRows();
    EXPECT_TRUE(sampler.series().empty());
    EXPECT_EQ(sampler.series().columns.size(), 1u);

    sampler.sample(192, 300);
    ASSERT_EQ(sampler.series().rows.size(), 1u);
    EXPECT_EQ(sampler.series().rows[0].accesses, 192u);
}

TEST(EpochSampler, TakeMovesSeriesOutAndResets)
{
    EpochSampler sampler;
    sampler.configure(32);
    sampler.addCounter("x", [] { return 2.0; });
    sampler.sample(32, 10);

    SampleSeries out = sampler.take();
    EXPECT_EQ(out.every, 32u);
    ASSERT_EQ(out.rows.size(), 1u);
    EXPECT_DOUBLE_EQ(out.rows[0].values[0], 2.0);

    // The sampler is ready for the next run: same epoch, same
    // columns, no rows.
    EXPECT_TRUE(sampler.series().empty());
    EXPECT_EQ(sampler.series().every, 32u);
    ASSERT_EQ(sampler.series().columns.size(), 1u);
    EXPECT_EQ(sampler.series().columns[0], "x");

    sampler.sample(64, 20);
    EXPECT_EQ(sampler.series().rows.size(), 1u);
}

TEST(GlobalSampleEvery, RoundTrips)
{
    const std::uint64_t prior = globalSampleEvery();
    setGlobalSampleEvery(4096);
    EXPECT_EQ(globalSampleEvery(), 4096u);
    setGlobalSampleEvery(0);
    EXPECT_EQ(globalSampleEvery(), 0u);
    setGlobalSampleEvery(prior);
}

} // namespace
} // namespace stms::telemetry
