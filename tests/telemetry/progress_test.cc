/** @file Unit tests for the live sweep progress meter and its mode
 *  resolution. Rendering is exercised via renderLine() (no TTY in
 *  test runs); the sticky-line plumbing itself lives in common/log
 *  and is covered by the log tests. */

#include <gtest/gtest.h>

#include <string>

#include "telemetry/progress.hh"

namespace stms::telemetry
{
namespace
{

TEST(ProgressMode, ExplicitModesIgnoreTty)
{
    EXPECT_TRUE(progressEnabled(ProgressMode::On));
    EXPECT_FALSE(progressEnabled(ProgressMode::Off));
    // Auto depends on isatty(stderr); under ctest that is false.
    // (Not asserted: a developer may run the binary on a TTY.)
}

TEST(ProgressMeter, DisabledMeterIsInertStub)
{
    ProgressMeter meter(false, "fig7", 4, 2);
    EXPECT_FALSE(meter.enabled());
    meter.noteRun(1000, 0.1, 0.2, 0.05);  // Swallowed: no state change.
    EXPECT_NE(meter.renderLine().find("0/4 runs"), std::string::npos);
    meter.finish();  // No sticky line was drawn; nothing to erase.
}

TEST(ProgressMeter, RenderLineReportsCountsAndStages)
{
    ProgressMeter meter(true, "fig7", 4, 2);
    meter.noteRun(4096, 0.0, 0.0, 0.0);
    meter.noteRun(4096, 0.0, 0.0, 0.0);
    meter.finish();

    const std::string line = meter.renderLine();
    EXPECT_NE(line.find("[fig7]"), std::string::npos);
    EXPECT_NE(line.find("2/4 runs"), std::string::npos);
    EXPECT_NE(line.find("rec/s"), std::string::npos);
    EXPECT_NE(line.find("ETA"), std::string::npos);
    EXPECT_NE(line.find("acq"), std::string::npos);
    EXPECT_NE(line.find("sim"), std::string::npos);
    EXPECT_NE(line.find("enc"), std::string::npos);
}

TEST(ProgressMeter, FinishIsIdempotent)
{
    ProgressMeter meter(true, "fig9", 1, 1);
    meter.noteRun(128, 0.0, 0.0, 0.0);
    meter.finish();
    meter.finish();  // Second call: no-op (destructor calls it too).
}

} // namespace
} // namespace stms::telemetry
