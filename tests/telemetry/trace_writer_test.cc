/** @file Unit tests for the Perfetto/Chrome trace-event exporter:
 *  JSON shape, phase set, event ordering, escaping, and the
 *  zero-cost-disabled contract of the instrumentation helpers. */

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "telemetry/trace_writer.hh"

namespace stms::telemetry
{
namespace
{

namespace fs = std::filesystem;

std::string
tempTracePath(const std::string &name)
{
    return (fs::temp_directory_path() / name).string();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::size_t
countOccurrences(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

TEST(TraceSink, WritesWellFormedTraceEventJson)
{
    const std::string path =
        tempTracePath("stms_trace_writer_test.json");
    TraceSink sink(path);

    sink.threadName("main");
    const std::uint64_t start = sink.nowUs();
    sink.span("stage", "simulate", start, 25, "run-a");
    sink.counter("queue.acquired", 3.0);
    sink.asyncBegin("run", 7, "run-a");
    sink.asyncEnd("run", 7, "run-a");
    sink.flushCurrentThread();

    std::string error;
    ASSERT_TRUE(sink.close(error)) << error;

    const std::string json = readFile(path);
    // Envelope chrome://tracing and Perfetto both accept.
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    // One of each phase, with their phase-specific payloads.
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"M\""), 1u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"X\""), 1u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"C\""), 1u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"b\""), 1u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"e\""), 1u);
    EXPECT_NE(json.find("\"dur\":25"), std::string::npos);
    EXPECT_NE(json.find("\"queue.acquired\""), std::string::npos);
    // Thread-name metadata sorts ahead of every timed event.
    EXPECT_LT(json.find("\"ph\":\"M\""), json.find("\"ph\":\"X\""));
    fs::remove(path);
}

TEST(TraceSink, MergesThreadBuffersSortedByTimestamp)
{
    const std::string path =
        tempTracePath("stms_trace_writer_sort_test.json");
    TraceSink sink(path);

    // Worker emits *later* events but flushes *first*: close() must
    // still order the merged stream by timestamp.
    sink.span("stage", "early", 0, 1);
    std::thread worker([&sink] {
        sink.threadName("worker");
        sink.span("stage", "late", 1000, 1);
        sink.flushCurrentThread();
    });
    worker.join();
    sink.flushCurrentThread();

    std::string error;
    ASSERT_TRUE(sink.close(error)) << error;

    const std::string json = readFile(path);
    EXPECT_LT(json.find("\"early\""), json.find("\"late\""));
    // Two distinct tids in the file (registration order, 1-based).
    EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
    EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
    fs::remove(path);
}

TEST(TraceSink, EscapesNamesAndIds)
{
    const std::string path =
        tempTracePath("stms_trace_writer_escape_test.json");
    TraceSink sink(path);
    sink.span("stage", "quote\"back\\slash\nnewline", 0, 1,
              "id\twith\ttabs");
    sink.flushCurrentThread();

    std::string error;
    ASSERT_TRUE(sink.close(error)) << error;

    const std::string json = readFile(path);
    EXPECT_NE(json.find("quote\\\"back\\\\slash\\nnewline"),
              std::string::npos);
    EXPECT_NE(json.find("id\\twith\\ttabs"), std::string::npos);
    // The raw control characters never reach the file.
    EXPECT_EQ(json.find('\t'), std::string::npos);
    fs::remove(path);
}

TEST(TraceSink, CloseIsIdempotentAndReportsIoFailure)
{
    const std::string good =
        tempTracePath("stms_trace_writer_idempotent_test.json");
    {
        TraceSink sink(good);
        sink.span("stage", "once", 0, 1);
        sink.flushCurrentThread();
        std::string error;
        EXPECT_TRUE(sink.close(error)) << error;
        EXPECT_TRUE(sink.close(error)) << error;  // Second close: no-op.
    }
    fs::remove(good);

    TraceSink broken(
        tempTracePath("stms_no_such_dir/sub/trace.json"));
    std::string error;
    EXPECT_FALSE(broken.close(error));
    EXPECT_FALSE(error.empty());
}

TEST(TraceSink, ScopedSpanAndEmitCounterAreNoOpsWhenDisabled)
{
    ASSERT_EQ(traceSink(), nullptr)
        << "another test leaked an installed sink";
    {
        // Must not crash or allocate a sink; nothing to observe
        // beyond "runs cleanly with no sink installed".
        ScopedSpan span("stage", "simulate", "run-a");
        emitCounter("queue.acquired", 1.0);
    }
    EXPECT_EQ(traceSink(), nullptr);
}

TEST(TraceSink, InstalledSinkCapturesScopedSpans)
{
    const std::string path =
        tempTracePath("stms_trace_writer_scoped_test.json");
    TraceSink sink(path);
    installTraceSink(&sink);
    {
        ScopedSpan span("stage", "acquire", "web-apache/p1.000");
        emitCounter("trace_cache.resident_kb", 64.0);
    }
    installTraceSink(nullptr);
    sink.flushCurrentThread();
    EXPECT_EQ(sink.eventCount(), 2u);

    std::string error;
    ASSERT_TRUE(sink.close(error)) << error;
    const std::string json = readFile(path);
    EXPECT_NE(json.find("\"acquire\""), std::string::npos);
    EXPECT_NE(json.find("web-apache/p1.000"), std::string::npos);
    fs::remove(path);
}

} // namespace
} // namespace stms::telemetry
