/** @file Unit tests for the table formatter. */

#include <gtest/gtest.h>

#include "stats/table.hh"

namespace stms
{
namespace
{

TEST(Table, AlignsColumns)
{
    Table table({"a", "long-header"});
    table.addRow({"wide-cell", "x"});
    const std::string text = table.toString();
    // Header, rule, one row.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
    EXPECT_NE(text.find("long-header"), std::string::npos);
    EXPECT_NE(text.find("wide-cell"), std::string::npos);
}

TEST(Table, CsvRendering)
{
    Table table({"x", "y"});
    table.addRow({"1", "2"});
    table.addRow({"3", "4"});
    EXPECT_EQ(table.toCsv(), "x,y\n1,2\n3,4\n");
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(1.23456), "1.23");
    EXPECT_EQ(Table::num(1.23456, 4), "1.2346");
    EXPECT_EQ(Table::pct(0.5), "50.0%");
    EXPECT_EQ(Table::pct(0.123, 0), "12%");
}

TEST(Table, RowCount)
{
    Table table({"only"});
    EXPECT_EQ(table.numRows(), 0u);
    table.addRow({"r"});
    EXPECT_EQ(table.numRows(), 1u);
}

} // namespace
} // namespace stms
