/** @file Unit tests for linear and log2 histograms. */

#include <gtest/gtest.h>

#include "stats/histogram.hh"

namespace stms
{
namespace
{

TEST(LinearHistogram, BucketsAndMean)
{
    LinearHistogram hist(10, 5);
    hist.sample(0);
    hist.sample(9);
    hist.sample(10);
    hist.sample(49);
    EXPECT_EQ(hist.count(), 4u);
    EXPECT_EQ(hist.bucketCount(0), 2u);
    EXPECT_EQ(hist.bucketCount(1), 1u);
    EXPECT_EQ(hist.bucketCount(4), 1u);
    EXPECT_DOUBLE_EQ(hist.mean(), (0 + 9 + 10 + 49) / 4.0);
}

TEST(LinearHistogram, OverflowGoesToLastBucket)
{
    LinearHistogram hist(10, 3);
    hist.sample(1000);
    EXPECT_EQ(hist.bucketCount(3), 1u);
}

TEST(LinearHistogram, WeightedSamples)
{
    LinearHistogram hist(4, 4);
    hist.sample(2, 10);
    EXPECT_EQ(hist.count(), 10u);
    EXPECT_EQ(hist.bucketCount(0), 10u);
}

TEST(LinearHistogram, Percentile)
{
    LinearHistogram hist(1, 100);
    for (std::uint64_t v = 0; v < 100; ++v)
        hist.sample(v);
    EXPECT_NEAR(static_cast<double>(hist.percentile(0.5)), 49.0, 1.0);
    EXPECT_NEAR(static_cast<double>(hist.percentile(0.9)), 89.0, 1.0);
}

TEST(LinearHistogram, ResetClears)
{
    LinearHistogram hist(10, 3);
    hist.sample(5);
    hist.reset();
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
}

TEST(Log2Histogram, BucketBoundaries)
{
    Log2Histogram hist(16);
    hist.sample(0);
    hist.sample(1);
    hist.sample(2);
    hist.sample(3);
    hist.sample(4);
    hist.sample(1023);
    hist.sample(1024);
    EXPECT_EQ(hist.bucketCount(0), 2u);  // {0, 1}
    EXPECT_EQ(hist.bucketCount(1), 2u);  // [2, 4)
    EXPECT_EQ(hist.bucketCount(2), 1u);  // [4, 8)
    EXPECT_EQ(hist.bucketCount(9), 1u);  // [512, 1024)
    EXPECT_EQ(hist.bucketCount(10), 1u); // [1024, 2048)
}

TEST(Log2Histogram, CumulativeFractionMonotone)
{
    Log2Histogram hist(16);
    for (std::uint64_t v = 1; v < 2000; v += 7)
        hist.sample(v);
    double prev = 0.0;
    for (std::size_t b = 0; b < hist.numBuckets(); ++b) {
        const double cum = hist.cumulativeFraction(b);
        EXPECT_GE(cum, prev);
        prev = cum;
    }
    EXPECT_NEAR(prev, 1.0, 1e-12);
}

TEST(Log2Histogram, WeightedMean)
{
    Log2Histogram hist(8);
    hist.sample(10, 5);
    hist.sample(20, 5);
    EXPECT_DOUBLE_EQ(hist.mean(), 15.0);
    EXPECT_EQ(hist.count(), 10u);
}

TEST(Log2Histogram, ToStringListsOccupiedBuckets)
{
    Log2Histogram hist(8);
    hist.sample(5);
    const std::string text = hist.toString("lengths");
    EXPECT_NE(text.find("lengths"), std::string::npos);
    EXPECT_NE(text.find("4"), std::string::npos);
}

} // namespace
} // namespace stms
