/** @file Tests of the experiment registry: lookup, unknown names,
 *  and the built-in catalog. */

#include <gtest/gtest.h>

#include <set>

#include "driver/registry.hh"

namespace stms::driver
{
namespace
{

class DummyExperiment : public ExperimentBase
{
  public:
    explicit DummyExperiment(std::string name)
        : ExperimentBase(std::move(name), "dummy")
    {}

    std::vector<RunSpec>
    plan(const Options &) const override
    {
        return {};
    }

    Report
    report(const Options &, const RunSet &) const override
    {
        return Report(name());
    }
};

TEST(ExperimentRegistry, FindReturnsRegisteredExperiment)
{
    ExperimentRegistry registry;
    registry.add(std::make_unique<DummyExperiment>("alpha"));
    const Experiment *found = registry.find("alpha");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name(), "alpha");
}

TEST(ExperimentRegistry, FindUnknownReturnsNull)
{
    ExperimentRegistry registry;
    registry.add(std::make_unique<DummyExperiment>("alpha"));
    EXPECT_EQ(registry.find("beta"), nullptr);
    EXPECT_EQ(registry.find(""), nullptr);
}

TEST(ExperimentRegistry, DuplicateNameIsFatal)
{
    ExperimentRegistry registry;
    registry.add(std::make_unique<DummyExperiment>("alpha"));
    EXPECT_EXIT(
        registry.add(std::make_unique<DummyExperiment>("alpha")),
        testing::ExitedWithCode(1), "duplicate experiment");
}

TEST(ExperimentRegistry, AllIsSortedByName)
{
    ExperimentRegistry registry;
    registry.add(std::make_unique<DummyExperiment>("zeta"));
    registry.add(std::make_unique<DummyExperiment>("alpha"));
    registry.add(std::make_unique<DummyExperiment>("mid"));
    const auto all = registry.all();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0]->name(), "alpha");
    EXPECT_EQ(all[1]->name(), "mid");
    EXPECT_EQ(all[2]->name(), "zeta");
}

TEST(ExperimentRegistry, GlobalHasEveryBuiltin)
{
    const ExperimentRegistry &registry = ExperimentRegistry::global();
    const char *expected[] = {
        "fig1-overhead", "fig1-storage", "fig4", "fig5",
        "fig6", "fig7", "fig8", "fig9",
        "table2", "index_contention", "mem_tech_sweep", "perf_suite",
        "ingest_replay", "synth_vs_ingest",
        "ablate-bucket", "ablate-priority", "ablate-sharing"};
    for (const char *name : expected) {
        const Experiment *experiment = registry.find(name);
        ASSERT_NE(experiment, nullptr) << name;
        EXPECT_FALSE(experiment->description().empty()) << name;
    }
    EXPECT_EQ(registry.size(), std::size(expected));
}

TEST(ExperimentRegistry, BuiltinPlansAreNonEmptyWithUniqueIds)
{
    Options options;
    options.set("records", "1024");
    for (const Experiment *experiment :
         ExperimentRegistry::global().all()) {
        const auto plan = experiment->plan(options);
        if (experiment->name() == "index_contention" ||
            experiment->name() == "perf_suite") {
            // Host-thread measurement harnesses: all work happens in
            // report(), so their plans are deliberately empty.
            EXPECT_TRUE(plan.empty());
            continue;
        }
        EXPECT_FALSE(plan.empty()) << experiment->name();
        std::set<std::string> ids;
        for (const RunSpec &spec : plan) {
            EXPECT_TRUE(ids.insert(spec.id).second)
                << experiment->name() << " duplicates id " << spec.id;
            EXPECT_EQ(spec.records, 1024u) << experiment->name();
            EXPECT_FALSE(spec.workload.empty()) << experiment->name();
        }
    }
}

TEST(RunSet, UnknownIdIsFatal)
{
    RunSet runs;
    runs.add("known", RunOutput{});
    EXPECT_TRUE(runs.has("known"));
    EXPECT_FALSE(runs.has("unknown"));
    EXPECT_EXIT(runs.at("unknown"), testing::ExitedWithCode(1),
                "unknown run id");
}

} // namespace
} // namespace stms::driver
