/** @file Tests of the capacity-bounded, refcounted TraceCache:
 *  generate-once behavior, pinning vs eviction, the capacity-0
 *  no-cache mode, and bit-identical regeneration after eviction. */

#include <gtest/gtest.h>

#include "driver/trace_cache.hh"

namespace stms::driver
{
namespace
{

constexpr std::uint64_t kRecords = 2048;

bool
sameTrace(const Trace &a, const Trace &b)
{
    if (a.perCore.size() != b.perCore.size())
        return false;
    for (std::size_t c = 0; c < a.perCore.size(); ++c) {
        if (a.perCore[c].size() != b.perCore[c].size())
            return false;
        for (std::size_t i = 0; i < a.perCore[c].size(); ++i) {
            const TraceRecord &x = a.perCore[c][i];
            const TraceRecord &y = b.perCore[c][i];
            if (x.addr != y.addr || x.think != y.think ||
                x.flags != y.flags)
                return false;
        }
    }
    return true;
}

TEST(TraceCache, AcquireGeneratesOnce)
{
    TraceCache cache;
    TraceCache::Handle first = cache.acquire("oltp-db2", kRecords);
    TraceCache::Handle second = cache.acquire("oltp-db2", kRecords);
    EXPECT_EQ(&first.trace(), &second.trace());
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.generations(), 1u);
    EXPECT_GT(cache.residentBytes(), 0u);
}

TEST(TraceCache, UnboundedNeverEvicts)
{
    TraceCache cache;  // kUnbounded default.
    { TraceCache::Handle h = cache.acquire("oltp-db2", kRecords); }
    { TraceCache::Handle h = cache.acquire("web-apache", kRecords); }
    EXPECT_EQ(cache.size(), 2u);  // Both resident, neither pinned.
}

TEST(TraceCache, CapacityZeroDisablesCaching)
{
    TraceCache cache(0);
    TraceCache::Handle first = cache.acquire("oltp-db2", kRecords);
    TraceCache::Handle second = cache.acquire("oltp-db2", kRecords);
    // Two private generations, nothing resident in the cache.
    EXPECT_NE(&first.trace(), &second.trace());
    EXPECT_EQ(cache.generations(), 2u);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.residentBytes(), 0u);
    // The handles own their traces: contents are still the
    // deterministic generation output.
    EXPECT_TRUE(sameTrace(first.trace(), second.trace()));
}

TEST(TraceCache, EvictsLruWhenOverCapacity)
{
    TraceCache cache;
    { TraceCache::Handle h = cache.acquire("oltp-db2", kRecords); }
    { TraceCache::Handle h = cache.acquire("web-apache", kRecords); }
    ASSERT_EQ(cache.size(), 2u);

    // Shrink below one trace's footprint: everything unpinned goes.
    cache.setCapacity(1);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.residentBytes(), 0u);

    // Re-acquiring regenerates (a fresh generation)...
    const std::uint64_t before = cache.generations();
    TraceCache::Handle again = cache.acquire("oltp-db2", kRecords);
    EXPECT_EQ(cache.generations(), before + 1);

    // ...bit-identically (generation is deterministic).
    TraceCache reference;
    TraceCache::Handle fresh = reference.acquire("oltp-db2", kRecords);
    EXPECT_TRUE(sameTrace(again.trace(), fresh.trace()));
}

TEST(TraceCache, PinnedTracesSurviveEviction)
{
    TraceCache cache;
    TraceCache::Handle pinned = cache.acquire("oltp-db2", kRecords);
    { TraceCache::Handle h = cache.acquire("web-apache", kRecords); }
    ASSERT_EQ(cache.size(), 2u);

    // Evict-while-pinned: the unpinned trace goes, the pinned one is
    // untouched even though the bound is still exceeded.
    cache.setCapacity(1);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_GT(cache.residentBytes(), 1u);  // Soft bound exceeded.
    EXPECT_EQ(pinned.trace().name, "oltp-db2");
    EXPECT_FALSE(pinned.trace().perCore.empty());

    // Releasing the pin lets the bound apply.
    pinned = TraceCache::Handle();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.residentBytes(), 0u);
}

TEST(TraceCache, LruPicksTheColdestVictim)
{
    TraceCache cache;
    { TraceCache::Handle h = cache.acquire("oltp-db2", kRecords); }
    { TraceCache::Handle h = cache.acquire("web-apache", kRecords); }
    // Touch oltp-db2 again: web-apache is now LRU.
    { TraceCache::Handle h = cache.acquire("oltp-db2", kRecords); }

    // Capacity for roughly one trace: the LRU one is dropped first.
    cache.setCapacity(cache.residentBytes() / 2 + 1);
    ASSERT_EQ(cache.size(), 1u);
    const std::uint64_t before = cache.generations();
    TraceCache::Handle kept = cache.acquire("oltp-db2", kRecords);
    EXPECT_EQ(cache.generations(), before);  // Still resident.
}

TEST(TraceCache, GetPinsForCacheLifetime)
{
    TraceCache cache;
    const Trace &trace = cache.get("oltp-db2", kRecords);
    cache.setCapacity(1);  // Would evict anything unpinned.
    EXPECT_EQ(cache.size(), 1u);
    // The legacy reference remains valid under capacity pressure.
    EXPECT_EQ(trace.name, "oltp-db2");
    EXPECT_EQ(&cache.get("oltp-db2", kRecords), &trace);
}

} // namespace
} // namespace stms::driver
