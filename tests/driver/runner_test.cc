/** @file Tests of the ExperimentRunner: trace caching, plan
 *  execution, and the determinism guarantee that a parallel sweep is
 *  bit-identical to a serial one. */

#include <gtest/gtest.h>

#include "driver/registry.hh"
#include "driver/runner.hh"
#include "driver/trace_cache.hh"

namespace stms::driver
{
namespace
{

constexpr std::uint64_t kTestRecords = 4096;

/** A cheap 2-config sweep: base vs idealized STMS on one workload in
 *  functional (no-timing) mode. */
class TinySweep : public ExperimentBase
{
  public:
    TinySweep()
        : ExperimentBase("tiny-sweep", "test-only 2-config sweep")
    {}

    std::vector<RunSpec>
    plan(const Options &options) const override
    {
        const std::uint64_t records =
            plannedRecords(options, kTestRecords);
        std::vector<RunSpec> specs;
        for (const char *workload : {"oltp-db2", "web-apache"}) {
            RunSpec base;
            base.id = std::string(workload) + "/base";
            base.workload = workload;
            base.records = records;
            base.config.sim = defaultSimConfig(true);
            specs.push_back(base);

            RunSpec ideal = base;
            ideal.id = std::string(workload) + "/ideal";
            ideal.config.stms = makeIdealTmsConfig();
            specs.push_back(ideal);
        }
        return specs;
    }

    Report
    report(const Options &, const RunSet &runs) const override
    {
        Report out(name());
        for (const char *workload : {"oltp-db2", "web-apache"}) {
            const RunOutput &base =
                runs.at(std::string(workload) + "/base");
            const RunOutput &ideal =
                runs.at(std::string(workload) + "/ideal");
            out.addMetric(std::string(workload) + ".base.reads",
                          static_cast<double>(
                              base.sim.mem.offchipReads));
            out.addMetric(std::string(workload) + ".ideal.coverage",
                          ideal.stmsCoverage);
            out.addMetric(std::string(workload) + ".ideal.ipc",
                          ideal.sim.ipc);
        }
        return out;
    }
};

TEST(TraceCache, GeneratesOnceAndReturnsSameInstance)
{
    TraceCache cache;
    const Trace &first = cache.get("oltp-db2", kTestRecords);
    const Trace &second = cache.get("oltp-db2", kTestRecords);
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(cache.size(), 1u);

    const Trace &other = cache.get("oltp-db2", kTestRecords / 2);
    EXPECT_NE(&first, &other);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ExperimentRunner, ExecutesEveryPlannedRun)
{
    TraceCache cache;
    ExperimentRunner runner(cache);
    TinySweep experiment;
    const RunSet runs = runner.execute(experiment, Options{});
    EXPECT_EQ(runs.size(), 4u);
    EXPECT_TRUE(runs.has("oltp-db2/base"));
    EXPECT_TRUE(runs.has("web-apache/ideal"));
    // Traces this short see no stream recurrence (reuse distances
    // start at 48K records), so assert activity rather than coverage:
    // the base system missed, and STMS logged those misses.
    EXPECT_GT(runs.at("oltp-db2/base").sim.mem.offchipReads, 0u);
    EXPECT_GT(runs.at("oltp-db2/ideal").stmsInternal.logged, 0u);
}

TEST(ExperimentRunner, ParallelSweepIsBitIdenticalToSerial)
{
    TinySweep experiment;
    Options options;

    TraceCache serial_cache;
    RunnerConfig serial_config;
    serial_config.threads = 1;
    ExperimentRunner serial(serial_cache, serial_config);
    const Report serial_report = serial.run(experiment, options);

    TraceCache parallel_cache;
    RunnerConfig parallel_config;
    parallel_config.threads = 4;
    ExperimentRunner parallel(parallel_cache, parallel_config);
    const Report parallel_report = parallel.run(experiment, options);

    // Metric-by-metric bitwise equality, then whole-document equality
    // (the CLI writes the latter to --json).
    ASSERT_EQ(serial_report.metrics().size(),
              parallel_report.metrics().size());
    for (std::size_t i = 0; i < serial_report.metrics().size(); ++i) {
        EXPECT_EQ(serial_report.metrics()[i].first,
                  parallel_report.metrics()[i].first);
        EXPECT_EQ(serial_report.metrics()[i].second,
                  parallel_report.metrics()[i].second)
            << serial_report.metrics()[i].first;
    }
    EXPECT_EQ(serial_report.toJson(), parallel_report.toJson());
}

TEST(ExperimentRunner, RepeatedSerialRunsAreBitIdentical)
{
    TinySweep experiment;
    TraceCache cache;
    ExperimentRunner runner(cache);
    const std::string first =
        runner.run(experiment, Options{}).toJson();
    const std::string second =
        runner.run(experiment, Options{}).toJson();
    EXPECT_EQ(first, second);
}

TEST(ExperimentRunner, BuiltinExperimentEndToEnd)
{
    // The real "table2" experiment through the real registry, tiny
    // trace: exercises registry lookup -> plan -> run -> report.
    const Experiment *experiment =
        ExperimentRegistry::global().find("table2");
    ASSERT_NE(experiment, nullptr);

    Options options;
    options.set("records", "2048");
    TraceCache cache;
    RunnerConfig config;
    config.threads = 2;
    ExperimentRunner runner(cache, config);
    const Report report = runner.run(*experiment, options);

    EXPECT_EQ(report.experiment(), "table2");
    EXPECT_FALSE(report.metrics().empty());
    EXPECT_FALSE(report.tables().empty());
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"experiment\": \"table2\""),
              std::string::npos);
    EXPECT_NE(json.find("sci-moldyn.mlp"), std::string::npos);
}

} // namespace
} // namespace stms::driver
