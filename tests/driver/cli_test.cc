/** @file Tests of the driver command-line parser, including the
 *  GNU-style --flag=value spellings and key=value passthrough. */

#include <gtest/gtest.h>

#include <array>

#include "driver/cli.hh"

namespace stms::driver
{
namespace
{

DriverArgs
parse(std::vector<const char *> tokens, bool expect_ok = true)
{
    tokens.insert(tokens.begin(), "driver");
    DriverArgs args;
    std::string error;
    const bool ok = parseDriverArgs(
        static_cast<int>(tokens.size()),
        const_cast<char **>(tokens.data()), args, error);
    EXPECT_EQ(ok, expect_ok) << error;
    return args;
}

TEST(DriverCli, SpaceSeparatedFlags)
{
    const DriverArgs args = parse(
        {"--experiment", "fig7", "--threads", "8", "--json", "o.json"});
    ASSERT_EQ(args.experiments.size(), 1u);
    EXPECT_EQ(args.experiments[0], "fig7");
    EXPECT_EQ(args.threads, 8u);
    EXPECT_EQ(args.jsonPath, "o.json");
}

TEST(DriverCli, EqualsSpelledFlagsAreHonored)
{
    // Regression: these used to fall through into the experiment
    // options, silently running serial with no JSON output.
    const DriverArgs args =
        parse({"--experiment=fig9", "--threads=4", "--json=out.json"});
    ASSERT_EQ(args.experiments.size(), 1u);
    EXPECT_EQ(args.experiments[0], "fig9");
    EXPECT_EQ(args.threads, 4u);
    EXPECT_EQ(args.jsonPath, "out.json");
    EXPECT_FALSE(args.options.has("threads"));
    EXPECT_FALSE(args.options.has("json"));
    EXPECT_FALSE(args.options.has("experiment"));
}

TEST(DriverCli, KeyValuePassthroughReachesOptions)
{
    const DriverArgs args =
        parse({"--experiment", "fig7", "records=65536", "--sampling=0.5"});
    EXPECT_EQ(args.options.getUint("records", 0), 65536u);
    EXPECT_EQ(args.options.getDouble("sampling", 0.0), 0.5);
}

TEST(DriverCli, RepeatedExperimentsAccumulate)
{
    const DriverArgs args =
        parse({"-e", "fig7", "--experiment=table2"});
    ASSERT_EQ(args.experiments.size(), 2u);
    EXPECT_EQ(args.experiments[0], "fig7");
    EXPECT_EQ(args.experiments[1], "table2");
}

TEST(DriverCli, TraceFlagsJoinIntoOneOption)
{
    // Repeated --trace flags (either spelling) accumulate into the
    // ';'-joined "trace" option trace_io::parseIngestSpec consumes —
    // one lane file per flag for ChampSim ingestion.
    const DriverArgs args = parse(
        {"--experiment", "ingest_replay", "--trace", "a.stms",
         "--trace=b.core1.champsim,format=champsim"});
    EXPECT_EQ(args.options.get("trace", ""),
              "a.stms;b.core1.champsim,format=champsim");
}

TEST(DriverCli, TraceNeedsAValue)
{
    parse({"--trace"}, /*expect_ok=*/false);
}

TEST(DriverCli, EqualsOnBooleanFlagsRejected)
{
    // "--csv=1" must not silently become the experiment option csv=1.
    parse({"--csv=1"}, /*expect_ok=*/false);
    parse({"--list=yes"}, /*expect_ok=*/false);
    parse({"--verbose=true"}, /*expect_ok=*/false);
}

TEST(DriverCli, ThreadsZeroMeansAutoDetect)
{
    // 0 is the auto spelling (hardware_concurrency at run time).
    EXPECT_EQ(parse({"--threads", "0"}).threads, 0u);
    EXPECT_EQ(parse({"--threads=0"}).threads, 0u);
}

TEST(DriverCli, BadThreadsRejected)
{
    parse({"--threads"}, /*expect_ok=*/false);
    parse({"--threads", "abc"}, /*expect_ok=*/false);
    parse({"--threads", "8x"}, /*expect_ok=*/false);
    parse({"--threads", "-2"}, /*expect_ok=*/false);
    parse({"--threads", "5000"}, /*expect_ok=*/false);
}

TEST(DriverCli, PipelineAndCacheFlags)
{
    const DriverArgs args = parse(
        {"--pipeline", "--trace-cache-mb", "256", "--no-timing"});
    EXPECT_TRUE(args.pipeline);
    EXPECT_EQ(args.traceCacheMb, 256u);
    EXPECT_FALSE(args.timing);

    const DriverArgs defaults = parse({});
    EXPECT_FALSE(defaults.pipeline);
    EXPECT_EQ(defaults.traceCacheMb, DriverArgs::kCacheUnset);
    EXPECT_TRUE(defaults.timing);

    EXPECT_EQ(parse({"--trace-cache-mb=0"}).traceCacheMb, 0u);
    parse({"--trace-cache-mb", "junk"}, /*expect_ok=*/false);
    // Boolean flags take no value (the =value spelling must not
    // fall through to the option store).
    parse({"--pipeline=1"}, /*expect_ok=*/false);
    parse({"--no-timing=1"}, /*expect_ok=*/false);
}

TEST(DriverCli, PipelineChunkFlagParses)
{
    // Both spellings reach the runner knob; the value never leaks
    // into the experiment options (it must not join fingerprints —
    // chunk size is a residency knob, not a model parameter).
    const DriverArgs space =
        parse({"--pipeline", "--pipeline-chunk", "4096"});
    EXPECT_EQ(space.pipelineChunk, 4096u);
    EXPECT_FALSE(space.options.has("pipeline-chunk"));
    const DriverArgs equals = parse({"--pipeline-chunk=7"});
    EXPECT_EQ(equals.pipelineChunk, 7u);
    EXPECT_FALSE(equals.options.has("pipeline-chunk"));

    // Default: 0 = engine default (kDefaultPipelineChunkRecords).
    EXPECT_EQ(parse({}).pipelineChunk, 0u);

    // Strictly positive, strictly numeric, sanity-bounded.
    parse({"--pipeline-chunk", "0"}, /*expect_ok=*/false);
    parse({"--pipeline-chunk=0"}, /*expect_ok=*/false);
    parse({"--pipeline-chunk", "junk"}, /*expect_ok=*/false);
    parse({"--pipeline-chunk", "64k"}, /*expect_ok=*/false);
    parse({"--pipeline-chunk"}, /*expect_ok=*/false);
    parse({"--pipeline-chunk", "1073741825"}, /*expect_ok=*/false);
}

TEST(DriverCli, UnknownTokensRejected)
{
    parse({"bogus"}, /*expect_ok=*/false);
    parse({"--unknown-flag"}, /*expect_ok=*/false);
}

TEST(DriverCli, ModeFlags)
{
    EXPECT_TRUE(parse({"--list"}).list);
    EXPECT_TRUE(parse({"--help"}).help);
    EXPECT_TRUE(parse({"--csv", "--verbose"}).csv);
    EXPECT_TRUE(parse({"--csv", "--verbose"}).verbose);
}

TEST(DriverCli, StoreFlagsParse)
{
    const DriverArgs args = parse({"--experiment", "fig7", "--store",
                                   "results", "--rerun"});
    EXPECT_EQ(args.storePath, "results");
    EXPECT_TRUE(args.rerun);
    EXPECT_FALSE(args.options.has("store"));

    const DriverArgs eq = parse(
        {"--experiment=fig7", "--store=results", "--baseline=b.jsonl"});
    EXPECT_EQ(eq.storePath, "results");
    EXPECT_EQ(eq.baselinePath, "b.jsonl");
    // --rerun is boolean; the =value spelling must not leak into the
    // experiment options.
    parse({"--rerun=1"}, /*expect_ok=*/false);
}

TEST(DriverCli, IndexShardsFlagFlowsToOptions)
{
    // Both spellings land in the "index-shards" experiment option so
    // the value participates in result-store fingerprints.
    const DriverArgs space =
        parse({"--experiment", "fig7", "--index-shards", "4"});
    EXPECT_EQ(space.options.getUint("index-shards", 1), 4u);
    const DriverArgs equals =
        parse({"--experiment=fig7", "--index-shards=8"});
    EXPECT_EQ(equals.options.getUint("index-shards", 1), 8u);

    // The bare key=value spelling routes through the same path.
    const DriverArgs bare = parse({"-e", "fig7", "index-shards=16"});
    EXPECT_EQ(bare.options.getUint("index-shards", 1), 16u);

    // One shard IS the legacy structure: every spelling of it is
    // canonicalized away so the fingerprint (and every archived
    // record) stays unchanged.
    for (const char *spelling :
         {"--index-shards=1", "index-shards=1"}) {
        const DriverArgs legacy =
            parse({"--experiment", "fig7", spelling});
        EXPECT_FALSE(legacy.options.has("index-shards")) << spelling;
    }
    const DriverArgs legacy =
        parse({"--experiment", "fig7", "--index-shards", "1"});
    EXPECT_FALSE(legacy.options.has("index-shards"));

    parse({"--index-shards", "0"}, /*expect_ok=*/false);
    parse({"--index-shards=junk"}, /*expect_ok=*/false);
    parse({"index-shards=0"}, /*expect_ok=*/false);
    parse({"--index-shards"}, /*expect_ok=*/false);
}

TEST(DriverCli, ShardParses)
{
    const DriverArgs args = parse(
        {"--experiment", "fig7", "--store", "s", "--shard", "2/4"});
    EXPECT_EQ(args.shardIndex, 2u);
    EXPECT_EQ(args.shardCount, 4u);
    EXPECT_EQ(parse({"-e", "fig7", "--store=s", "--shard=1/1"})
                  .shardCount,
              1u);

    parse({"-e", "fig7", "--store", "s", "--shard", "0/4"},
          /*expect_ok=*/false);
    parse({"-e", "fig7", "--store", "s", "--shard", "5/4"},
          /*expect_ok=*/false);
    parse({"-e", "fig7", "--store", "s", "--shard", "nope"},
          /*expect_ok=*/false);
    // Sharded runs exist only as store records: --store is required.
    parse({"-e", "fig7", "--shard", "1/4"}, /*expect_ok=*/false);
}

TEST(DriverCli, ResultsModeCollectsOperands)
{
    const DriverArgs diff = parse({"--results", "diff", "before.jsonl",
                                   "after_store", "rel_tol=0.05"});
    EXPECT_EQ(diff.resultsCmd, "diff");
    ASSERT_EQ(diff.resultsArgs.size(), 2u);
    EXPECT_EQ(diff.resultsArgs[0], "before.jsonl");
    EXPECT_EQ(diff.resultsArgs[1], "after_store");
    EXPECT_EQ(diff.options.getDouble("rel_tol", 0.0), 0.05);

    const DriverArgs show =
        parse({"--results=show", "8dd8", "--store", "results"});
    EXPECT_EQ(show.resultsCmd, "show");
    ASSERT_EQ(show.resultsArgs.size(), 1u);
    EXPECT_EQ(show.resultsArgs[0], "8dd8");

    // Bare operands stay rejected outside results mode.
    parse({"--experiment", "fig7", "bogus"}, /*expect_ok=*/false);
}

} // namespace
} // namespace stms::driver
