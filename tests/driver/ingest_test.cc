/** @file End-to-end tests of the trace-ingestion experiments: the
 *  synth_vs_ingest equality gate (the PR's acceptance criterion) and
 *  ingest_replay's source-mode equivalence, both through the real
 *  registry + runner stack. */

#include <gtest/gtest.h>

#include <filesystem>

#include "driver/registry.hh"
#include "driver/runner.hh"
#include "trace_io/native.hh"
#include "workload/generators.hh"
#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

double
metric(const Report &report, const std::string &name)
{
    for (const auto &[key, value] : report.metrics()) {
        if (key == name)
            return value;
    }
    ADD_FAILURE() << "metric '" << name << "' missing";
    return -1.0;
}

TEST(SynthVsIngest, RoundTripsAreMetricIdentical)
{
    const Experiment *experiment =
        ExperimentRegistry::global().find("synth_vs_ingest");
    ASSERT_NE(experiment, nullptr);

    TraceCache traces;
    ExperimentRunner runner(traces);
    Options options;
    options.set("records", "256");

    const Report report = runner.run(*experiment, options);
    EXPECT_GT(metric(report, "compared"), 10.0);
    EXPECT_EQ(metric(report, "mismatches"), 0.0);
}

TEST(SynthVsIngest, SmallChunksStillMatch)
{
    const Experiment *experiment =
        ExperimentRegistry::global().find("synth_vs_ingest");
    ASSERT_NE(experiment, nullptr);

    TraceCache traces;
    ExperimentRunner runner(traces);
    Options options;
    options.set("records", "128");
    options.set("chunk", "3");  // Worst-case boundary churn.

    const Report report = runner.run(*experiment, options);
    EXPECT_EQ(metric(report, "mismatches"), 0.0);
}

TEST(IngestReplay, IngestedExportMatchesSyntheticBaseline)
{
    // The CI job diffs the two JSON reports byte-for-byte; this is
    // the in-process version of the same guarantee.
    const Experiment *experiment =
        ExperimentRegistry::global().find("ingest_replay");
    ASSERT_NE(experiment, nullptr);

    const std::string path =
        (std::filesystem::temp_directory_path() /
         "stms_ingest_replay_test.stms")
            .string();
    WorkloadGenerator generator(makeWorkload("web-apache", 1024));
    ASSERT_TRUE(trace_io::save(generator.generate(), path));

    TraceCache traces;
    ExperimentRunner runner(traces);

    Options synthetic;
    synthetic.set("workload", "web-apache");
    synthetic.set("records", "1024");
    const Report direct = runner.run(*experiment, synthetic);

    Options ingested;
    ingested.set("trace", path);
    const Report replayed = runner.run(*experiment, ingested);

    EXPECT_EQ(direct.toJson(), replayed.toJson());
    std::filesystem::remove(path);
}

TEST(IngestReplay, PlansBaseAndStmsRuns)
{
    const Experiment *experiment =
        ExperimentRegistry::global().find("ingest_replay");
    ASSERT_NE(experiment, nullptr);
    Options options;
    options.set("records", "512");
    const std::vector<RunSpec> plan = experiment->plan(options);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].id, "base");
    EXPECT_FALSE(plan[0].config.stms.has_value());
    EXPECT_TRUE(plan[1].config.stms.has_value());
    EXPECT_FALSE(plan[0].ingest.has_value());  // Synthetic mode.
}

} // namespace
} // namespace stms::driver
