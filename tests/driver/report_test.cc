/** @file Tests of the structured result sink: JSON escaping, number
 *  rendering, and the report's JSON/text shape. */

#include <gtest/gtest.h>

#include <limits>

#include "driver/report.hh"

namespace stms::driver
{
namespace
{

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("fig7"), "fig7");
    EXPECT_EQ(jsonEscape("web-apache.p0.125"), "web-apache.p0.125");
}

TEST(JsonEscape, EscapesSpecials)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("line1\nline2"), "line1\\nline2");
    EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
    EXPECT_EQ(jsonEscape(std::string("nul\x01")), "nul\\u0001");
}

TEST(JsonNumber, IntegralAndFractional)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(-3.0), "-3");
    EXPECT_EQ(jsonNumber(0.5), "0.5");
}

TEST(JsonNumber, RoundTripsDoubles)
{
    const double values[] = {0.1, 1.0 / 3.0, 1.9155272670124155,
                             -2.5e-7};
    for (double value : values) {
        const std::string text = jsonNumber(value);
        EXPECT_EQ(std::stod(text), value) << text;
    }
}

TEST(JsonNumber, NonFiniteBecomesNull)
{
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
}

Report
sampleReport()
{
    Report report("sample");
    report.addMetric("alpha.coverage", 0.5);
    report.addMetric("beta.coverage", 42.0);
    Table table({"workload", "coverage"});
    table.addRow({"alpha", "50.0%"});
    report.addTable("Sample table", std::move(table));
    report.addNote("shape check note");
    return report;
}

TEST(Report, JsonShape)
{
    const std::string json = sampleReport().toJson();
    EXPECT_NE(json.find("\"experiment\": \"sample\""),
              std::string::npos);
    EXPECT_NE(json.find("\"metrics\": {"), std::string::npos);
    EXPECT_NE(json.find("\"alpha.coverage\": 0.5"), std::string::npos);
    EXPECT_NE(json.find("\"beta.coverage\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"tables\": ["), std::string::npos);
    EXPECT_NE(json.find("\"title\": \"Sample table\""),
              std::string::npos);
    EXPECT_NE(json.find("\"columns\": [\"workload\", \"coverage\"]"),
              std::string::npos);
    EXPECT_NE(json.find("[\"alpha\", \"50.0%\"]"), std::string::npos);
    // Metric insertion order is preserved.
    EXPECT_LT(json.find("alpha.coverage"), json.find("beta.coverage"));
}

TEST(Report, JsonIsByteDeterministic)
{
    EXPECT_EQ(sampleReport().toJson(), sampleReport().toJson());
}

TEST(Report, EmptyReportStillWellFormed)
{
    Report report("empty");
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"metrics\": {}"), std::string::npos);
    EXPECT_NE(json.find("\"tables\": []"), std::string::npos);
}

TEST(Report, TextRendersTablesAndNotes)
{
    const std::string text = sampleReport().toText();
    EXPECT_NE(text.find("Sample table"), std::string::npos);
    EXPECT_NE(text.find("workload"), std::string::npos);
    EXPECT_NE(text.find("shape check note"), std::string::npos);
}

} // namespace
} // namespace stms::driver
