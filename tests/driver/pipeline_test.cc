/** @file Determinism tests of the pipelined run scheduler: every
 *  combination of threads x pipeline (x shard slices, store-backed)
 *  must produce byte-identical reports and identical store
 *  fingerprints — the acceptance gate of the pipeline PR. */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <unistd.h>

#include "driver/registry.hh"
#include "driver/runner.hh"
#include "driver/trace_cache.hh"
#include "results/store.hh"

namespace stms::driver
{
namespace
{

namespace fs = std::filesystem;

const Experiment *
testExperiment()
{
    const Experiment *experiment =
        ExperimentRegistry::global().find("table2");
    EXPECT_NE(experiment, nullptr);
    return experiment;
}

Options
testOptions()
{
    Options options;
    options.set("records", "1024");
    return options;
}

std::string
runSchedule(std::uint32_t threads, bool pipeline,
            std::uint64_t chunk_records = 0)
{
    TraceCache cache;
    RunnerConfig config;
    config.threads = threads;
    config.pipeline = pipeline;
    config.pipelineChunkRecords = chunk_records;
    ExperimentRunner runner(cache, config);
    ExecStats stats;
    const Report report =
        runner.run(*testExperiment(), testOptions(), &stats);
    EXPECT_EQ(stats.pipelined, pipeline);
    EXPECT_EQ(stats.executed, stats.planned);
    return report.toJson();
}

TEST(PipelineDeterminism, ThreadsByPipelineMatrixIsBitIdentical)
{
    const std::string reference =
        runSchedule(/*threads=*/1, /*pipeline=*/false);
    ASSERT_FALSE(reference.empty());
    for (std::uint32_t threads : {1u, 2u, 4u}) {
        for (bool pipeline : {false, true}) {
            EXPECT_EQ(runSchedule(threads, pipeline), reference)
                << "threads=" << threads
                << " pipeline=" << pipeline;
        }
    }
}

TEST(PipelineDeterminism, ChunkSizeNeverChangesModelOutput)
{
    // The streamed chunk size is a residency/overlap knob only: a
    // one-record chunk (maximum lane-queue churn and producer
    // parking), a chunk that misaligns with every internal boundary
    // (7), and the 64Ki default must all reproduce the serial bytes
    // at every worker count. This is the satellite acceptance gate:
    // digests byte-identical across chunk x threads x pipeline.
    const std::string reference =
        runSchedule(/*threads=*/1, /*pipeline=*/false);
    ASSERT_FALSE(reference.empty());
    for (std::uint64_t chunk :
         {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{64 * 1024}}) {
        for (std::uint32_t threads : {1u, 2u, 4u}) {
            EXPECT_EQ(runSchedule(threads, /*pipeline=*/true, chunk),
                      reference)
                << "chunk=" << chunk << " threads=" << threads;
            // Chunk size is ignored off-pipeline (whole-trace
            // fan-out); it must not perturb that schedule either.
            EXPECT_EQ(runSchedule(threads, /*pipeline=*/false, chunk),
                      reference)
                << "chunk=" << chunk << " threads=" << threads
                << " (fan-out)";
        }
    }
}

TEST(PipelineDeterminism, BoundedTraceCacheDoesNotChangeResults)
{
    const std::string reference = runSchedule(1, false);
    // A cache too small to hold anything (every acquire regenerates)
    // and the no-cache mode both reproduce the reference bytes.
    for (std::uint64_t capacity : {std::uint64_t{1}, std::uint64_t{0}}) {
        TraceCache cache(capacity);
        RunnerConfig config;
        config.threads = 2;
        config.pipeline = true;
        ExperimentRunner runner(cache, config);
        const Report report =
            runner.run(*testExperiment(), testOptions());
        EXPECT_EQ(report.toJson(), reference)
            << "capacity=" << capacity;
    }
}

TEST(PipelineDeterminism, TimingNeverEntersTheModelReport)
{
    // setTiming changes toJson (the timing key) but leaves the store
    // record — what fingerprints and snapshot diffs consume —
    // untouched.
    TraceCache cache;
    ExperimentRunner runner(cache);
    ExecStats stats;
    Report report =
        runner.run(*testExperiment(), testOptions(), &stats);
    const results::ResultRecord before = report.toResultRecord();
    const std::string json_before = report.toJson();

    ReportTiming timing;
    timing.present = true;
    timing.wallSeconds = stats.wallSeconds;
    timing.threads = stats.threadsResolved;
    report.setTiming(timing);

    const results::ResultRecord after = report.toResultRecord();
    EXPECT_EQ(before.scalars, after.scalars);
    EXPECT_NE(report.toJson(), json_before);
    EXPECT_NE(report.toJson().find("\"timing\""), std::string::npos);
    EXPECT_EQ(json_before.find("\"timing\""), std::string::npos);
}

class PipelineShardTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("stms_pipeline_shard_" +
                 std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string dir_;
};

TEST_F(PipelineShardTest, ShardedPipelinedSweepMergesBitIdentically)
{
    // Execute the sweep as two pipelined, multi-threaded shard
    // slices into one store, then fold the store into a report: the
    // bytes and the archived fingerprints must match a serial
    // store-free sweep exactly.
    std::string error;
    auto store = results::ResultStore::open(dir_, error);
    ASSERT_NE(store, nullptr) << error;

    for (std::uint32_t shard = 1; shard <= 2; ++shard) {
        TraceCache cache;
        RunnerConfig config;
        config.threads = 2;
        config.pipeline = true;
        config.store = store.get();
        config.shardIndex = shard;
        config.shardCount = 2;
        ExperimentRunner slice(cache, config);
        ExecStats stats;
        slice.execute(*testExperiment(), testOptions(), &stats);
        EXPECT_EQ(stats.executed + stats.sharded, stats.planned);
    }

    // The two slices covered the plan exactly once each.
    TraceCache cache;
    RunnerConfig merged_config;
    merged_config.store = store.get();
    ExperimentRunner merged(cache, merged_config);
    ExecStats merged_stats;
    const Report merged_report = merged.run(
        *testExperiment(), testOptions(), &merged_stats);
    EXPECT_EQ(merged_stats.resumed, merged_stats.planned);
    EXPECT_EQ(merged_stats.executed, 0u);

    const std::string serial = runSchedule(1, false);
    EXPECT_EQ(merged_report.toJson(), serial);

    // Store fingerprints are schedule-independent: a serial
    // store-backed sweep into a fresh store archives the same
    // fingerprint set.
    const std::string other_dir = dir_ + "_serial";
    fs::remove_all(other_dir);
    auto serial_store = results::ResultStore::open(other_dir, error);
    ASSERT_NE(serial_store, nullptr) << error;
    TraceCache serial_cache;
    RunnerConfig serial_config;
    serial_config.store = serial_store.get();
    ExperimentRunner serial_runner(serial_cache, serial_config);
    serial_runner.execute(*testExperiment(), testOptions());

    auto fingerprints = [](results::ResultStore &from) {
        std::vector<std::string> values;
        for (const auto &record : from.loadAll())
            values.push_back(record.fingerprint.hex());
        std::sort(values.begin(), values.end());
        return values;
    };
    EXPECT_EQ(fingerprints(*store), fingerprints(*serial_store));
    fs::remove_all(other_dir);
}

} // namespace
} // namespace stms::driver
