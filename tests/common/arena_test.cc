/** @file Unit tests for the per-run bump arena (common/arena.hh). */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/arena.hh"

namespace stms
{
namespace
{

TEST(Arena, HandsOutAlignedDistinctStorage)
{
    Arena arena;
    void *a = arena.allocate(100, 8);
    void *b = arena.allocate(100, 8);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % Arena::kAlign, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % Arena::kAlign, 0u);
    // Storage is writable across the whole request.
    std::memset(a, 0xab, 100);
    std::memset(b, 0xcd, 100);
    EXPECT_EQ(static_cast<unsigned char *>(a)[99], 0xab);
}

TEST(Arena, ResetReuseReturnsIdenticalPointers)
{
    // The determinism contract: an identical allocation sequence after
    // reset() sees identical pointers — arena reuse is invisible to
    // the byte-identity gates.
    Arena arena;
    const std::size_t sizes[] = {64, 8, 4096, 100, 1 << 20, 24};
    std::vector<void *> first;
    for (const std::size_t size : sizes)
        first.push_back(arena.allocate(size, 8));
    arena.reset();
    std::vector<void *> second;
    for (const std::size_t size : sizes)
        second.push_back(arena.allocate(size, 8));
    EXPECT_EQ(first, second);
}

TEST(Arena, GrowsAcrossBlocksAndKeepsThemOnReset)
{
    Arena arena;
    // Force several block allocations.
    for (int i = 0; i < 8; ++i)
        arena.allocate(Arena::kFirstBlockBytes, 8);
    const std::size_t blocks = arena.blockCount();
    EXPECT_GT(blocks, 1u);
    const std::size_t reserved = arena.reservedBytes();
    arena.reset();
    EXPECT_EQ(arena.blockCount(), blocks);  // blocks are kept...
    EXPECT_EQ(arena.reservedBytes(), reserved);
    EXPECT_EQ(arena.allocatedBytes(), 0u);  // ...but the cursor rewinds
}

TEST(Arena, TrimReturnsBlocksToTheOs)
{
    Arena arena;
    arena.allocate(Arena::kFirstBlockBytes * 3, 8);
    arena.allocate(1 << 20, 4096);  // overflow path
    EXPECT_GT(arena.reservedBytes(), 0u);
    arena.trim();
    EXPECT_EQ(arena.blockCount(), 0u);
    EXPECT_EQ(arena.reservedBytes(), 0u);
    EXPECT_EQ(arena.allocatedBytes(), 0u);
    EXPECT_EQ(arena.overflowCount(), 0u);
    // Still usable afterwards.
    EXPECT_NE(arena.allocate(64, 8), nullptr);
}

TEST(Arena, TrimThreadRunArenaIsNoopWhileRunIsLive)
{
    ScopedRunArena run;
    Arena *installed = currentArena();
    ASSERT_NE(installed, nullptr);
    void *before = installed->allocate(64, 8);
    trimThreadRunArena();  // must not free live run storage
    EXPECT_GT(installed->reservedBytes(), 0u);
    std::memset(before, 0x5a, 64);  // still valid
}

TEST(Arena, BudgetExhaustionFallsBackToHeap)
{
    Arena arena(1024);  // tiny budget
    void *in_block = arena.allocate(512, 8);
    ASSERT_NE(in_block, nullptr);
    EXPECT_EQ(arena.overflowCount(), 0u);
    // Past the budget: still served, via tracked heap overflow.
    void *overflow = arena.allocate(1 << 20, 8);
    ASSERT_NE(overflow, nullptr);
    EXPECT_GE(arena.overflowCount(), 1u);
    std::memset(overflow, 0x5a, 1 << 20);  // fully usable
    arena.reset();
    EXPECT_EQ(arena.overflowCount(), 0u);  // freed on reset
}

TEST(Arena, OverAlignedRequestsUseOverflowPath)
{
    Arena arena;
    void *p = arena.allocate(256, 4096);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 4096, 0u);
    EXPECT_EQ(arena.overflowCount(), 1u);
    arena.reset();
    EXPECT_EQ(arena.overflowCount(), 0u);
}

TEST(ArenaScope, InstallsAndRestoresCurrentArena)
{
    EXPECT_EQ(currentArena(), nullptr);
    Arena outer_arena;
    {
        ArenaScope outer(&outer_arena);
        EXPECT_EQ(currentArena(), &outer_arena);
        Arena inner_arena;
        {
            ArenaScope inner(&inner_arena);
            EXPECT_EQ(currentArena(), &inner_arena);
        }
        EXPECT_EQ(currentArena(), &outer_arena);
    }
    EXPECT_EQ(currentArena(), nullptr);
}

TEST(ScopedRunArena, OutermostOwnsNestedIsNoop)
{
    EXPECT_EQ(currentArena(), nullptr);
    {
        ScopedRunArena outer;
        Arena *run_arena = currentArena();
        ASSERT_NE(run_arena, nullptr);
        run_arena->allocate(64, 8);
        const std::size_t allocated = run_arena->allocatedBytes();
        EXPECT_GT(allocated, 0u);
        {
            ScopedRunArena nested;  // same arena, no reset on exit
            EXPECT_EQ(currentArena(), run_arena);
        }
        EXPECT_EQ(currentArena(), run_arena);
        EXPECT_EQ(run_arena->allocatedBytes(), allocated);
    }
    EXPECT_EQ(currentArena(), nullptr);
    // The next outermost scope reuses the thread's cached arena, reset.
    {
        ScopedRunArena again;
        ASSERT_NE(currentArena(), nullptr);
        EXPECT_EQ(currentArena()->allocatedBytes(), 0u);
    }
}

TEST(ArenaBuffer, UsesHeapWithoutArenaAndArenaWithin)
{
    ASSERT_EQ(currentArena(), nullptr);
    ArenaBuffer<std::uint64_t> heap_buffer(32);  // heap fallback
    heap_buffer[0] = 1;
    heap_buffer[31] = 2;
    EXPECT_EQ(heap_buffer.size(), 32u);

    Arena arena;
    {
        ArenaScope scope(&arena);
        ArenaBuffer<std::uint64_t> arena_buffer(32);
        EXPECT_GT(arena.allocatedBytes(), 0u);
        arena_buffer[0] = 3;
        EXPECT_EQ(arena_buffer[0], 3u);
        // Destruction inside the scope is a no-op for the arena.
    }
    arena.reset();
}

TEST(ArenaBuffer, MoveTransfersOwnership)
{
    ArenaBuffer<std::uint64_t> a(8);
    a[0] = 99;
    std::uint64_t *data = a.data();
    ArenaBuffer<std::uint64_t> b(std::move(a));
    EXPECT_EQ(b.data(), data);
    EXPECT_EQ(b[0], 99u);
    EXPECT_EQ(a.data(), nullptr);
    EXPECT_TRUE(a.empty());
    a = std::move(b);
    EXPECT_EQ(a.data(), data);
}

TEST(ArenaAllocator, VectorRoundTripOnArenaAndHeap)
{
    Arena arena;
    {
        std::vector<int, ArenaAllocator<int>> on_arena(
            (ArenaAllocator<int>(&arena)));
        for (int i = 0; i < 1000; ++i)
            on_arena.push_back(i);
        EXPECT_EQ(on_arena[999], 999);
        EXPECT_GT(arena.allocatedBytes(), 0u);
    }  // destruction never touches the arena (no-op deallocate)

    std::vector<int, ArenaAllocator<int>> on_heap;  // null allocator
    for (int i = 0; i < 1000; ++i)
        on_heap.push_back(i);
    EXPECT_EQ(on_heap[999], 999);
}

TEST(ArenaAllocator, MovePropagatesAllocator)
{
    Arena arena;
    std::vector<int, ArenaAllocator<int>> source(
        (ArenaAllocator<int>(&arena)));
    source.assign(100, 7);
    std::vector<int, ArenaAllocator<int>> target;  // heap-bound
    target = std::move(source);  // POCMA: steals buffer + allocator
    EXPECT_EQ(target.size(), 100u);
    EXPECT_EQ(target.get_allocator().arena(), &arena);
}

} // namespace
} // namespace stms
