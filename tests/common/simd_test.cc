/** @file Bit-identity tests for the SIMD scan kernels (common/simd.hh). */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/simd.hh"

namespace stms
{
namespace
{

/** Allocate a padded scan array per the kernel contract, filling the
 *  tail padding with the worst case: copies of the probe key, which a
 *  buggy kernel would falsely report as a match past count. */
std::vector<std::uint64_t>
paddedArray(const std::vector<std::uint64_t> &keys, std::uint64_t probe)
{
    std::vector<std::uint64_t> padded = keys;
    padded.resize(keys.size() + simd::kScanPadU64, probe);
    return padded;
}

void
expectKernelMatchesScalar(const std::vector<std::uint64_t> &keys,
                          std::uint64_t probe)
{
    const std::vector<std::uint64_t> padded = paddedArray(keys, probe);
    const std::size_t expected =
        simd::findFirstEqualScalar(padded.data(), keys.size(), probe);
    const std::size_t got =
        simd::findFirstEqual(padded.data(), keys.size(), probe);
    EXPECT_EQ(got, expected)
        << "count=" << keys.size() << " probe=" << probe;
}

TEST(SimdFindFirstEqual, ActiveIsaIsKnown)
{
    const std::string isa = simd::activeIsa();
    EXPECT_TRUE(isa == "scalar" || isa == "sse2" || isa == "avx2" ||
                isa == "neon")
        << isa;
}

TEST(SimdFindFirstEqual, EmptyArrayNeverMatches)
{
    // count == 0 with only padding behind the pointer.
    std::vector<std::uint64_t> padded(simd::kScanPadU64, 42);
    EXPECT_EQ(simd::findFirstEqual(padded.data(), 0, 42), simd::kNpos);
    EXPECT_EQ(simd::findFirstEqualScalar(padded.data(), 0, 42),
              simd::kNpos);
}

TEST(SimdFindFirstEqual, AllBucketOccupancies)
{
    // The index-table bucket scan runs at every occupancy 0..12 (the
    // paper's 12-entry buckets). Probe each position plus a miss.
    for (std::size_t count = 0; count <= 12; ++count) {
        std::vector<std::uint64_t> keys(count);
        for (std::size_t i = 0; i < count; ++i)
            keys[i] = 1000 + i;
        for (std::size_t hit = 0; hit < count; ++hit)
            expectKernelMatchesScalar(keys, 1000 + hit);
        expectKernelMatchesScalar(keys, 999);  // miss
    }
}

TEST(SimdFindFirstEqual, FirstMatchWinsOnDuplicates)
{
    for (std::size_t count = 2; count <= 16; ++count) {
        std::vector<std::uint64_t> keys(count, 7);  // all duplicates
        expectKernelMatchesScalar(keys, 7);
        const std::vector<std::uint64_t> padded = paddedArray(keys, 7);
        EXPECT_EQ(simd::findFirstEqual(padded.data(), count, 7), 0u);
    }
}

TEST(SimdFindFirstEqual, TailLanesAreMasked)
{
    // A match sitting only in the padding (index >= count) must be
    // invisible at every misalignment of count vs the vector width.
    for (std::size_t count = 0; count <= 2 * simd::kScanLaneU64 + 1;
         ++count) {
        std::vector<std::uint64_t> keys(count, 1);
        expectKernelMatchesScalar(keys, 2);  // only padding holds 2
        const std::vector<std::uint64_t> padded = paddedArray(keys, 2);
        EXPECT_EQ(simd::findFirstEqual(padded.data(), count, 2),
                  simd::kNpos);
    }
}

TEST(SimdFindFirstEqual, ExtremeKeyValues)
{
    const std::vector<std::uint64_t> specials = {
        0, 1, ~0ULL, ~0ULL - 1, 0x8000000000000000ULL,
        0x7fffffffffffffffULL, 0x00000000ffffffffULL,
        0xffffffff00000000ULL};
    // The SSE2 kernel compares 32-bit halves and combines them; keys
    // agreeing in one half but not the other are its failure mode.
    std::vector<std::uint64_t> keys = specials;
    keys.push_back(0x1234567800000000ULL);
    keys.push_back(0x0000000012345678ULL);
    for (const std::uint64_t probe : specials)
        expectKernelMatchesScalar(keys, probe);
    expectKernelMatchesScalar(keys, 0xdeadbeefULL);
}

TEST(SimdFindFirstEqual, RandomizedAgainstScalar)
{
    std::mt19937_64 rng(1234);
    for (int round = 0; round < 2000; ++round) {
        const std::size_t count = rng() % 64;
        std::vector<std::uint64_t> keys(count);
        // Small key domain => frequent duplicates and hits.
        for (auto &key : keys)
            key = rng() % 32;
        const std::uint64_t probe = rng() % 32;
        expectKernelMatchesScalar(keys, probe);
    }
}

TEST(SimdFindFirstEqual, PaddedScanCountCoversContract)
{
    for (std::size_t count = 0; count <= 33; ++count) {
        EXPECT_GE(simd::paddedScanCount(count), count);
        EXPECT_EQ(simd::paddedScanCount(count) % simd::kScanLaneU64,
                  0u);
        // Padding by kScanPadU64 always satisfies the read contract.
        EXPECT_LE(simd::paddedScanCount(count),
                  count + simd::kScanPadU64 + simd::kScanLaneU64);
    }
}

} // namespace
} // namespace stms
