/** @file Unit tests for address math and traffic-class helpers. */

#include <gtest/gtest.h>

#include "common/types.hh"

namespace stms
{
namespace
{

TEST(Types, BlockAlignMasksLowBits)
{
    EXPECT_EQ(blockAlign(0x1000), 0x1000u);
    EXPECT_EQ(blockAlign(0x103F), 0x1000u);
    EXPECT_EQ(blockAlign(0x1040), 0x1040u);
    EXPECT_EQ(blockAlign(0), 0u);
}

TEST(Types, BlockNumberRoundTrips)
{
    for (Addr addr : {Addr{0}, Addr{64}, Addr{0x12345678C0}}) {
        EXPECT_EQ(blockAddress(blockNumber(addr)), blockAlign(addr));
    }
}

TEST(Types, BlockGeometryConsistent)
{
    EXPECT_EQ(1u << kBlockShift, kBlockBytes);
}

TEST(Types, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 40));
    EXPECT_FALSE(isPowerOfTwo((1ULL << 40) + 1));
}

TEST(Types, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
}

TEST(Types, CeilPowerOfTwo)
{
    EXPECT_EQ(ceilPowerOfTwo(1), 1u);
    EXPECT_EQ(ceilPowerOfTwo(2), 2u);
    EXPECT_EQ(ceilPowerOfTwo(3), 4u);
    EXPECT_EQ(ceilPowerOfTwo(1000), 1024u);
}

TEST(Types, DivCeil)
{
    EXPECT_EQ(divCeil(0, 12), 0u);
    EXPECT_EQ(divCeil(1, 12), 1u);
    EXPECT_EQ(divCeil(12, 12), 1u);
    EXPECT_EQ(divCeil(13, 12), 2u);
}

TEST(Types, TrafficClassNamesDistinct)
{
    for (std::size_t a = 0; a < kNumTrafficClasses; ++a) {
        for (std::size_t b = a + 1; b < kNumTrafficClasses; ++b) {
            EXPECT_STRNE(
                trafficClassName(static_cast<TrafficClass>(a)),
                trafficClassName(static_cast<TrafficClass>(b)));
        }
    }
}

} // namespace
} // namespace stms
