/** @file Unit tests for the flat address map (common/addr_map.hh). */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <unordered_map>

#include "common/addr_map.hh"

namespace stms
{
namespace
{

TEST(FlatAddrMap, InsertFindTake)
{
    FlatAddrMap<int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_FALSE(map.contains(0x40));
    map.emplace(0x40, 1);
    map.emplace(0x80, 2);
    map.emplace(0xc0, 3);
    EXPECT_EQ(map.size(), 3u);
    ASSERT_NE(map.find(0x80), nullptr);
    EXPECT_EQ(*map.find(0x80), 2);
    EXPECT_EQ(map.find(0x100), nullptr);

    const std::size_t slot = map.indexOf(0x40);
    ASSERT_NE(slot, map.kNpos);
    EXPECT_EQ(map.take(slot), 1);
    EXPECT_EQ(map.size(), 2u);
    EXPECT_FALSE(map.contains(0x40));
    EXPECT_TRUE(map.contains(0x80));
    EXPECT_TRUE(map.contains(0xc0));
}

TEST(FlatAddrMap, GrowsPastInitialCapacity)
{
    FlatAddrMap<std::uint64_t> map;
    for (std::uint64_t i = 0; i < 100; ++i)
        map.emplace(i * 64, std::uint64_t{i});
    EXPECT_EQ(map.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i) {
        ASSERT_NE(map.find(i * 64), nullptr) << i;
        EXPECT_EQ(*map.find(i * 64), i);
    }
}

TEST(FlatAddrMap, MovableOnlyValues)
{
    FlatAddrMap<std::unique_ptr<int>> map;
    map.emplace(0x40, std::make_unique<int>(7));
    map.emplace(0x80, std::make_unique<int>(8));
    auto taken = map.take(map.indexOf(0x40));
    EXPECT_EQ(*taken, 7);
    EXPECT_EQ(**map.find(0x80), 8);
}

TEST(FlatAddrMap, RandomizedAgainstUnorderedMap)
{
    FlatAddrMap<std::uint64_t> flat;
    std::unordered_map<Addr, std::uint64_t> reference;
    std::mt19937_64 rng(99);
    for (int op = 0; op < 5000; ++op) {
        const Addr key = (rng() % 64) * 64;
        if (rng() % 2 == 0 && !reference.contains(key)) {
            flat.emplace(key, static_cast<std::uint64_t>(op));
            reference.emplace(key, static_cast<std::uint64_t>(op));
        } else if (reference.contains(key)) {
            const std::size_t slot = flat.indexOf(key);
            ASSERT_NE(slot, flat.kNpos);
            EXPECT_EQ(flat.take(slot), reference.at(key));
            reference.erase(key);
        } else {
            EXPECT_FALSE(flat.contains(key));
        }
        EXPECT_EQ(flat.size(), reference.size());
    }
    for (const auto &[key, value] : reference) {
        ASSERT_NE(flat.find(key), nullptr);
        EXPECT_EQ(*flat.find(key), value);
    }
}

TEST(FlatAddrMapDeath, DuplicateKeyPanics)
{
    FlatAddrMap<int> map;
    map.emplace(0x40, 1);
    EXPECT_DEATH(map.emplace(0x40, 2), "duplicate flat-map key");
}

} // namespace
} // namespace stms
