/** @file Unit tests for the log-level gate and level parsing. The
 *  sink itself writes to stderr and is exercised indirectly (every
 *  test binary routes warnings through it); here we pin the
 *  process-wide threshold semantics the --log-level flag relies on. */

#include <gtest/gtest.h>

#include "common/log.hh"

namespace stms
{
namespace
{

/** Restores the process-wide level on scope exit so tests in this
 *  binary cannot leak a noisy (or silent) threshold. */
struct LevelGuard
{
    LogLevel saved = logLevel();
    ~LevelGuard() { setLogLevel(saved); }
};

TEST(LogLevel, DefaultsToWarn)
{
    // The test binary never calls setLogLevel before this file runs
    // alphabetically first in the suite; still, assert through the
    // guard so ordering changes cannot break it.
    LevelGuard guard;
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Debug));
}

TEST(LogLevel, ThresholdOrdersLevels)
{
    LevelGuard guard;
    setLogLevel(LogLevel::Error);
    EXPECT_FALSE(logEnabled(LogLevel::Warn));

    setLogLevel(LogLevel::Debug);
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_TRUE(logEnabled(LogLevel::Info));
    EXPECT_TRUE(logEnabled(LogLevel::Debug));
}

TEST(LogLevel, ParseAcceptsTheFourNames)
{
    LogLevel out = LogLevel::Warn;
    EXPECT_TRUE(parseLogLevel("error", out));
    EXPECT_EQ(out, LogLevel::Error);
    EXPECT_TRUE(parseLogLevel("warn", out));
    EXPECT_EQ(out, LogLevel::Warn);
    EXPECT_TRUE(parseLogLevel("info", out));
    EXPECT_EQ(out, LogLevel::Info);
    EXPECT_TRUE(parseLogLevel("debug", out));
    EXPECT_EQ(out, LogLevel::Debug);
}

TEST(LogLevel, ParseRejectsUnknownNamesUntouched)
{
    LogLevel out = LogLevel::Info;
    EXPECT_FALSE(parseLogLevel("", out));
    EXPECT_FALSE(parseLogLevel("verbose", out));
    EXPECT_FALSE(parseLogLevel("WARN", out));  // Case-sensitive.
    EXPECT_FALSE(parseLogLevel("warn ", out));
    EXPECT_EQ(out, LogLevel::Info);
}

TEST(LogLevel, NamesRoundTrip)
{
    for (const LogLevel level :
         {LogLevel::Error, LogLevel::Warn, LogLevel::Info,
          LogLevel::Debug}) {
        LogLevel parsed = LogLevel::Error;
        EXPECT_TRUE(parseLogLevel(logLevelName(level), parsed));
        EXPECT_EQ(parsed, level);
    }
}

TEST(LogFormat, FormatsPrintfStyle)
{
    EXPECT_EQ(logFormat("%s: %d of %zu", "shard", 3,
                        static_cast<std::size_t>(8)),
              "shard: 3 of 8");
    EXPECT_EQ(logFormat("plain"), "plain");
}

} // namespace
} // namespace stms
