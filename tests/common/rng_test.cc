/** @file Unit and statistical tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

namespace stms
{
namespace
{

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedRestoresSequence)
{
    Rng rng(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(rng.next());
    rng.reseed(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next()) ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(11);
    constexpr std::uint64_t buckets = 16;
    std::array<int, buckets> counts{};
    constexpr int samples = 64000;
    for (int i = 0; i < samples; ++i)
        ++counts[rng.below(buckets)];
    for (int count : counts) {
        EXPECT_GT(count, samples / buckets * 0.85);
        EXPECT_LT(count, samples / buckets * 1.15);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t value = rng.range(3, 10);
        EXPECT_GE(value, 3u);
        EXPECT_LE(value, 10u);
        saw_lo |= value == 3;
        saw_hi |= value == 10;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    constexpr int samples = 80000;
    for (int i = 0; i < samples; ++i)
        hits += rng.chance(0.125) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / samples, 0.125, 0.01);
}

TEST(Rng, GeometricMean)
{
    Rng rng(19);
    double sum = 0.0;
    constexpr int samples = 20000;
    for (int i = 0; i < samples; ++i)
        sum += static_cast<double>(rng.geometric(0.25));
    // Mean failures before success = (1-p)/p = 3.
    EXPECT_NEAR(sum / samples, 3.0, 0.15);
}

TEST(Zipf, MassSumsToOne)
{
    ZipfSampler zipf(100, 0.9);
    double total = 0.0;
    for (std::size_t i = 0; i < zipf.size(); ++i)
        total += zipf.mass(i);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, SkewFavorsLowIndices)
{
    ZipfSampler zipf(1000, 1.0);
    Rng rng(23);
    std::uint64_t low = 0;
    constexpr int samples = 20000;
    for (int i = 0; i < samples; ++i)
        low += zipf.sample(rng) < 10 ? 1 : 0;
    // First 10 of 1000 items should draw far more than 1% of mass.
    EXPECT_GT(static_cast<double>(low) / samples, 0.2);
}

TEST(Zipf, ZeroSkewIsUniform)
{
    ZipfSampler zipf(10, 0.0);
    for (std::size_t i = 0; i < zipf.size(); ++i)
        EXPECT_NEAR(zipf.mass(i), 0.1, 1e-9);
}

TEST(SplitMix, Deterministic)
{
    std::uint64_t s1 = 99, s2 = 99;
    EXPECT_EQ(splitMix64(s1), splitMix64(s2));
    EXPECT_EQ(s1, s2);
}

} // namespace
} // namespace stms
