/** @file Unit tests for the key=value option store and size parsing. */

#include <gtest/gtest.h>

#include "common/config.hh"

namespace stms
{
namespace
{

TEST(Options, ParseTokenSplitsOnEquals)
{
    Options options;
    EXPECT_TRUE(options.parseToken("alpha=1"));
    EXPECT_TRUE(options.parseToken("name=hello=world"));
    EXPECT_EQ(options.get("alpha", ""), "1");
    EXPECT_EQ(options.get("name", ""), "hello=world");
}

TEST(Options, ParseTokenRejectsBadSyntax)
{
    Options options;
    EXPECT_FALSE(options.parseToken("novalue"));
    EXPECT_FALSE(options.parseToken("=leading"));
}

TEST(Options, TypedAccessorsWithFallbacks)
{
    Options options;
    options.set("i", "-5");
    options.set("d", "0.125");
    options.set("b", "true");
    options.set("u", "64M");
    EXPECT_EQ(options.getInt("i", 0), -5);
    EXPECT_EQ(options.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(options.getDouble("d", 0), 0.125);
    EXPECT_TRUE(options.getBool("b", false));
    EXPECT_FALSE(options.getBool("missing", false));
    EXPECT_EQ(options.getUint("u", 0), 64ULL << 20);
}

TEST(Options, BoolSpellings)
{
    Options options;
    for (const char *spelling : {"1", "true", "yes", "on"}) {
        options.set("k", spelling);
        EXPECT_TRUE(options.getBool("k", false)) << spelling;
    }
    for (const char *spelling : {"0", "false", "no", "off"}) {
        options.set("k", spelling);
        EXPECT_FALSE(options.getBool("k", true)) << spelling;
    }
}

TEST(Options, KeysSorted)
{
    Options options;
    options.set("zeta", "1");
    options.set("alpha", "2");
    const auto keys = options.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "alpha");
    EXPECT_EQ(keys[1], "zeta");
}

TEST(ParseSize, Suffixes)
{
    EXPECT_EQ(parseSize("0"), 0u);
    EXPECT_EQ(parseSize("512"), 512u);
    EXPECT_EQ(parseSize("8K"), 8ULL << 10);
    EXPECT_EQ(parseSize("8k"), 8ULL << 10);
    EXPECT_EQ(parseSize("64M"), 64ULL << 20);
    EXPECT_EQ(parseSize("2G"), 2ULL << 30);
    EXPECT_EQ(parseSize("1.5K"), 1536u);
    EXPECT_EQ(parseSize(""), 0u);
}

TEST(FormatSize, HumanReadable)
{
    EXPECT_EQ(formatSize(0), "0.0B");
    EXPECT_EQ(formatSize(1024), "1.0KB");
    EXPECT_EQ(formatSize(64ULL << 20), "64.0MB");
    EXPECT_EQ(formatSize(1536), "1.5KB");
}

} // namespace
} // namespace stms
