/** @file Property tests for the address-hash mixer. */

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "common/hash.hh"
#include "common/rng.hh"

namespace stms
{
namespace
{

TEST(Hash, MixIsDeterministic)
{
    EXPECT_EQ(mixHash64(12345), mixHash64(12345));
    EXPECT_NE(mixHash64(12345), mixHash64(12346));
}

TEST(Hash, NoCollisionsOnDenseRange)
{
    // The finalizer is bijective; a dense range must stay distinct.
    std::unordered_set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 100000; ++i)
        EXPECT_TRUE(seen.insert(mixHash64(i)).second);
}

TEST(Hash, BucketSpreadUniformForSequentialBlocks)
{
    // Sequential block numbers (the worst realistic input) must
    // spread evenly over buckets — this is what keeps index-table
    // bucket occupancy balanced (Sec. 4.3).
    constexpr std::uint64_t buckets = 64;
    std::vector<int> counts(buckets, 0);
    constexpr int n = 64000;
    for (int i = 0; i < n; ++i)
        ++counts[hashToBucket(static_cast<Addr>(i), buckets)];
    for (int count : counts) {
        EXPECT_GT(count, n / buckets * 0.85);
        EXPECT_LT(count, n / buckets * 1.15);
    }
}

TEST(Hash, AvalancheFlipsManyBits)
{
    Rng rng(31);
    double total_flips = 0;
    constexpr int trials = 2000;
    for (int t = 0; t < trials; ++t) {
        const std::uint64_t x = rng.next();
        const std::uint64_t y = x ^ (1ULL << rng.below(64));
        total_flips += __builtin_popcountll(mixHash64(x) ^
                                            mixHash64(y));
    }
    // Single-bit input changes should flip ~32 output bits.
    EXPECT_NEAR(total_flips / trials, 32.0, 3.0);
}

} // namespace
} // namespace stms
