/** @file Unit tests for the trace representation. File I/O moved to
 *  the trace_io subsystem; see tests/trace_io/. */

#include <gtest/gtest.h>

#include "workload/trace.hh"

namespace stms
{
namespace
{

Trace
sampleTrace()
{
    Trace trace;
    trace.name = "sample";
    trace.perCore.resize(2);
    for (CoreId c = 0; c < 2; ++c) {
        for (int i = 0; i < 100; ++i) {
            TraceRecord record;
            record.addr = blockAddress(
                static_cast<Addr>(c) * 1000 + static_cast<Addr>(i));
            record.think = static_cast<std::uint16_t>(i);
            record.flags = static_cast<std::uint8_t>(i % 4);
            trace.perCore[c].push_back(record);
        }
    }
    return trace;
}

TEST(TraceRecord, FlagAccessors)
{
    TraceRecord record;
    EXPECT_FALSE(record.isWrite());
    EXPECT_FALSE(record.isDependent());
    record.flags = TraceRecord::kWrite;
    EXPECT_TRUE(record.isWrite());
    record.flags = TraceRecord::kWrite | TraceRecord::kDependent;
    EXPECT_TRUE(record.isDependent());
}

TEST(Trace, TotalsAndFootprint)
{
    Trace trace = sampleTrace();
    EXPECT_EQ(trace.numCores(), 2u);
    EXPECT_EQ(trace.totalRecords(), 200u);
    EXPECT_EQ(trace.footprintBlocks(), 200u);  // All distinct.
}

TEST(Trace, FootprintDeduplicatesBlocks)
{
    Trace trace;
    trace.perCore.resize(1);
    for (int i = 0; i < 10; ++i) {
        TraceRecord record;
        record.addr = 0x1000;  // Same block every time.
        trace.perCore[0].push_back(record);
    }
    EXPECT_EQ(trace.footprintBlocks(), 1u);
}

} // namespace
} // namespace stms
