/** @file Unit tests for trace representation and file I/O. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "workload/trace.hh"

namespace stms
{
namespace
{

Trace
sampleTrace()
{
    Trace trace;
    trace.name = "sample";
    trace.perCore.resize(2);
    for (CoreId c = 0; c < 2; ++c) {
        for (int i = 0; i < 100; ++i) {
            TraceRecord record;
            record.addr = blockAddress(
                static_cast<Addr>(c) * 1000 + static_cast<Addr>(i));
            record.think = static_cast<std::uint16_t>(i);
            record.flags = static_cast<std::uint8_t>(i % 4);
            trace.perCore[c].push_back(record);
        }
    }
    return trace;
}

TEST(TraceRecord, FlagAccessors)
{
    TraceRecord record;
    EXPECT_FALSE(record.isWrite());
    EXPECT_FALSE(record.isDependent());
    record.flags = TraceRecord::kWrite;
    EXPECT_TRUE(record.isWrite());
    record.flags = TraceRecord::kWrite | TraceRecord::kDependent;
    EXPECT_TRUE(record.isDependent());
}

TEST(Trace, TotalsAndFootprint)
{
    Trace trace = sampleTrace();
    EXPECT_EQ(trace.numCores(), 2u);
    EXPECT_EQ(trace.totalRecords(), 200u);
    EXPECT_EQ(trace.footprintBlocks(), 200u);  // All distinct.
}

TEST(Trace, FootprintDeduplicatesBlocks)
{
    Trace trace;
    trace.perCore.resize(1);
    for (int i = 0; i < 10; ++i) {
        TraceRecord record;
        record.addr = 0x1000;  // Same block every time.
        trace.perCore[0].push_back(record);
    }
    EXPECT_EQ(trace.footprintBlocks(), 1u);
}

TEST(TraceIo, SaveLoadRoundTrip)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "stms_trace_rt.bin")
            .string();
    Trace original = sampleTrace();
    ASSERT_TRUE(trace_io::save(original, path));

    Trace loaded;
    ASSERT_TRUE(trace_io::load(loaded, path));
    EXPECT_EQ(loaded.name, original.name);
    ASSERT_EQ(loaded.numCores(), original.numCores());
    for (CoreId c = 0; c < original.numCores(); ++c) {
        ASSERT_EQ(loaded.perCore[c].size(), original.perCore[c].size());
        for (std::size_t i = 0; i < original.perCore[c].size(); ++i) {
            EXPECT_EQ(loaded.perCore[c][i].addr,
                      original.perCore[c][i].addr);
            EXPECT_EQ(loaded.perCore[c][i].think,
                      original.perCore[c][i].think);
            EXPECT_EQ(loaded.perCore[c][i].flags,
                      original.perCore[c][i].flags);
        }
    }
    std::remove(path.c_str());
}

TEST(TraceIo, LoadRejectsMissingFile)
{
    Trace trace;
    EXPECT_FALSE(trace_io::load(trace, "/nonexistent/path/t.bin"));
}

TEST(TraceIo, LoadRejectsGarbage)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "stms_garbage.bin")
            .string();
    std::FILE *file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    const char junk[] = "this is not a trace file at all";
    std::fwrite(junk, 1, sizeof(junk), file);
    std::fclose(file);

    Trace trace;
    EXPECT_FALSE(trace_io::load(trace, path));
    EXPECT_EQ(trace.totalRecords(), 0u);
    std::remove(path.c_str());
}

} // namespace
} // namespace stms
