/** @file Unit tests for the synthetic workload generator. */

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "workload/workloads.hh"

namespace stms
{
namespace
{

WorkloadSpec
tinySpec()
{
    WorkloadSpec spec;
    spec.name = "tiny";
    spec.numCores = 2;
    spec.recordsPerCore = 20000;
    spec.seed = 77;
    spec.minReuseRecords = 500;
    spec.maxReuseRecords = 5000;
    spec.noiseFraction = 0.2;
    spec.hotFraction = 0.2;
    spec.scanFraction = 0.1;
    spec.writeFraction = 0.1;
    spec.dependentProb = 0.5;
    return spec;
}

TEST(Generator, ProducesRequestedShape)
{
    WorkloadGenerator generator(tinySpec());
    Trace trace = generator.generate();
    EXPECT_EQ(trace.numCores(), 2u);
    for (const auto &records : trace.perCore)
        EXPECT_EQ(records.size(), 20000u);
}

TEST(Generator, DeterministicForSameSpec)
{
    WorkloadGenerator a(tinySpec()), b(tinySpec());
    Trace ta = a.generate();
    Trace tb = b.generate();
    ASSERT_EQ(ta.totalRecords(), tb.totalRecords());
    for (CoreId c = 0; c < ta.numCores(); ++c) {
        for (std::size_t i = 0; i < ta.perCore[c].size(); ++i) {
            ASSERT_EQ(ta.perCore[c][i].addr, tb.perCore[c][i].addr);
            ASSERT_EQ(ta.perCore[c][i].flags, tb.perCore[c][i].flags);
        }
    }
}

TEST(Generator, SeedsChangeTheTrace)
{
    WorkloadSpec other = tinySpec();
    other.seed = 78;
    Trace ta = WorkloadGenerator(tinySpec()).generate();
    Trace tb = WorkloadGenerator(other).generate();
    std::size_t same = 0;
    for (std::size_t i = 0; i < 1000; ++i)
        same += ta.perCore[0][i].addr == tb.perCore[0][i].addr ? 1 : 0;
    EXPECT_LT(same, 100u);
}

TEST(Generator, CoresUseDisjointAddressSpaces)
{
    Trace trace = WorkloadGenerator(tinySpec()).generate();
    std::unordered_set<Addr> core0;
    for (const auto &record : trace.perCore[0])
        core0.insert(blockNumber(record.addr));
    for (const auto &record : trace.perCore[1])
        EXPECT_EQ(core0.count(blockNumber(record.addr)), 0u);
}

TEST(Generator, MixFractionsApproximatelyRespected)
{
    Trace trace = WorkloadGenerator(tinySpec()).generate();
    std::map<std::uint64_t, std::uint64_t> region_counts;
    for (const auto &record : trace.perCore[0])
        ++region_counts[(record.addr >> 36) & 0xF];
    const double n = static_cast<double>(trace.perCore[0].size());
    // Region tags: 1=stream 2=noise 3=hot 4=scan.
    EXPECT_NEAR(region_counts[2] / n, 0.2, 0.03);
    EXPECT_NEAR(region_counts[3] / n, 0.2, 0.03);
    EXPECT_NEAR(region_counts[4] / n, 0.1, 0.03);
    EXPECT_NEAR(region_counts[1] / n, 0.5, 0.03);
}

TEST(Generator, WriteAndDependenceFractions)
{
    Trace trace = WorkloadGenerator(tinySpec()).generate();
    double writes = 0, dependent = 0;
    const auto &records = trace.perCore[0];
    for (const auto &record : records) {
        writes += record.isWrite() ? 1 : 0;
        dependent += record.isDependent() ? 1 : 0;
    }
    EXPECT_NEAR(writes / records.size(), 0.1, 0.02);
    EXPECT_NEAR(dependent / records.size(), 0.5, 0.03);
}

TEST(Generator, StreamsActuallyRecur)
{
    WorkloadSpec spec = tinySpec();
    spec.noiseFraction = 0;
    spec.hotFraction = 0;
    spec.scanFraction = 0;
    spec.meanVisits = 6.0;
    Trace trace = WorkloadGenerator(spec).generate();
    std::unordered_map<Addr, int> visits;
    for (const auto &record : trace.perCore[0])
        ++visits[record.addr];
    std::uint64_t recurring = 0;
    for (const auto &[addr, count] : visits)
        recurring += count > 1 ? 1 : 0;
    // With meanVisits 6, most blocks are visited more than once.
    EXPECT_GT(static_cast<double>(recurring) /
                  static_cast<double>(visits.size()),
              0.4);
}

TEST(Generator, OnceFractionSuppressesRecurrence)
{
    WorkloadSpec spec = tinySpec();
    spec.noiseFraction = 0;
    spec.hotFraction = 0;
    spec.scanFraction = 0;
    spec.onceFraction = 1.0;  // Nothing recurs (DSS).
    Trace trace = WorkloadGenerator(spec).generate();
    std::unordered_map<Addr, int> visits;
    for (const auto &record : trace.perCore[0])
        ++visits[record.addr];
    for (const auto &[addr, count] : visits)
        EXPECT_EQ(count, 1) << "visit-once stream recurred";
}

TEST(Generator, LoopSingleStreamRepeatsIteration)
{
    WorkloadSpec spec = tinySpec();
    spec.loopSingleStream = true;
    spec.minStreamLen = 500;
    spec.maxStreamLen = 500;
    spec.noiseFraction = 0;
    spec.hotFraction = 0;
    spec.scanFraction = 0;
    spec.recordsPerCore = 2000;
    Trace trace = WorkloadGenerator(spec).generate();
    const auto &records = trace.perCore[0];
    // Iterations replay the identical sequence.
    for (std::size_t i = 0; i + 500 < records.size(); ++i)
        EXPECT_EQ(records[i].addr, records[i + 500].addr);
    // Footprint equals one iteration.
    std::unordered_set<Addr> blocks;
    for (const auto &record : records)
        blocks.insert(record.addr);
    EXPECT_EQ(blocks.size(), 500u);
}

TEST(Generator, BurstsEmitBackToBackStreamRecords)
{
    WorkloadSpec spec = tinySpec();
    spec.missBurstMax = 3;
    spec.thinkMin = 100;
    spec.thinkMax = 200;
    Trace trace = WorkloadGenerator(spec).generate();
    std::uint64_t tiny_think = 0;
    for (const auto &record : trace.perCore[0])
        tiny_think += record.think < 100 ? 1 : 0;
    EXPECT_GT(tiny_think, 0u);  // Burst members use think 2..10.
}

TEST(LaneGeneratorTest, ChunkedFillsReproduceGenerateExactly)
{
    // The chunked pipeline resumes a lane through arbitrary fill()
    // boundaries; every record — addr, think, AND flags — must match
    // the one-shot generate() stream bit for bit, or the streamed
    // schedule silently diverges from every committed baseline.
    // Chunk 1 cuts between every record (including mid-burst), 7
    // misaligns with all internal state, 64Ki exceeds the lane.
    const WorkloadSpec spec = tinySpec();
    const Trace whole = WorkloadGenerator(spec).generate();
    for (std::size_t chunk : {std::size_t{1}, std::size_t{7},
                              std::size_t{64 * 1024}}) {
        for (CoreId core = 0; core < spec.numCores; ++core) {
            LaneGenerator lane(spec, core);
            std::vector<TraceRecord> streamed;
            std::vector<TraceRecord> buffer;
            while (!lane.done()) {
                buffer.clear();
                const std::size_t got = lane.fill(buffer, chunk);
                EXPECT_EQ(got, buffer.size());
                streamed.insert(streamed.end(), buffer.begin(),
                                buffer.end());
            }
            EXPECT_EQ(lane.emitted(), spec.recordsPerCore);
            EXPECT_EQ(lane.fill(buffer, chunk), 0u) << "fill at eof";
            const auto &reference = whole.perCore[core];
            ASSERT_EQ(streamed.size(), reference.size())
                << "chunk=" << chunk << " core=" << core;
            for (std::size_t i = 0; i < reference.size(); ++i) {
                ASSERT_EQ(streamed[i].addr, reference[i].addr)
                    << "chunk=" << chunk << " core=" << core
                    << " record=" << i;
                ASSERT_EQ(streamed[i].think, reference[i].think);
                ASSERT_EQ(streamed[i].flags, reference[i].flags);
            }
        }
    }
}

TEST(StandardSuite, AllWorkloadsBuildAndAreKnown)
{
    for (const auto &info : standardSuite()) {
        EXPECT_TRUE(isKnownWorkload(info.name));
        WorkloadSpec spec = makeWorkload(info.name, 4096);
        EXPECT_EQ(spec.recordsPerCore, 4096u);
        Trace trace = WorkloadGenerator(spec).generate();
        EXPECT_EQ(trace.totalRecords(), 4u * 4096u);
    }
    EXPECT_FALSE(isKnownWorkload("no-such-workload"));
}

} // namespace
} // namespace stms
