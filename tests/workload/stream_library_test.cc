/** @file Unit tests for the temporal-stream library. */

#include <gtest/gtest.h>

#include <set>

#include "workload/stream_library.hh"

namespace stms
{
namespace
{

LibraryConfig
smallConfig()
{
    LibraryConfig config;
    config.numStreams = 64;
    config.minLength = 2;
    config.maxLength = 100;
    config.baseAddr = 0x40000000;
    return config;
}

TEST(StreamLibrary, LengthsWithinBounds)
{
    Rng rng(1);
    StreamLibrary library(smallConfig(), rng);
    for (std::size_t s = 0; s < library.numStreams(); ++s) {
        EXPECT_GE(library.length(s), 2u);
        EXPECT_LE(library.length(s), 100u);
    }
}

TEST(StreamLibrary, StreamsAreDisjointAndBlockAligned)
{
    Rng rng(2);
    StreamLibrary library(smallConfig(), rng);
    std::set<Addr> seen;
    for (std::size_t s = 0; s < library.numStreams(); ++s) {
        for (Addr addr : library.stream(s)) {
            EXPECT_EQ(addr, blockAlign(addr));
            EXPECT_TRUE(seen.insert(addr).second)
                << "duplicate address across streams";
        }
    }
    EXPECT_EQ(seen.size(), library.totalBlocks());
}

TEST(StreamLibrary, DeterministicForSameSeed)
{
    Rng rng_a(3), rng_b(3);
    StreamLibrary a(smallConfig(), rng_a);
    StreamLibrary b(smallConfig(), rng_b);
    ASSERT_EQ(a.numStreams(), b.numStreams());
    for (std::size_t s = 0; s < a.numStreams(); ++s) {
        ASSERT_EQ(a.length(s), b.length(s));
        for (std::size_t i = 0; i < a.length(s); ++i)
            EXPECT_EQ(a.stream(s)[i], b.stream(s)[i]);
    }
}

TEST(StreamLibrary, ShuffleBreaksStride)
{
    // Within a stream, the fraction of +1-block deltas must be small:
    // stride prefetchers should not be able to learn stream bodies.
    Rng rng(4);
    LibraryConfig config = smallConfig();
    config.minLength = 64;
    config.maxLength = 64;
    StreamLibrary library(config, rng);
    std::uint64_t unit_strides = 0;
    std::uint64_t deltas = 0;
    for (std::size_t s = 0; s < library.numStreams(); ++s) {
        auto body = library.stream(s);
        for (std::size_t i = 1; i < body.size(); ++i) {
            ++deltas;
            if (body[i] == body[i - 1] + kBlockBytes)
                ++unit_strides;
        }
    }
    EXPECT_LT(static_cast<double>(unit_strides) /
                  static_cast<double>(deltas),
              0.1);
}

TEST(StreamLibrary, SampleLengthRespectsClamp)
{
    Rng rng(5);
    LibraryConfig config = smallConfig();
    config.minLength = 7;
    config.maxLength = 9;
    for (int i = 0; i < 1000; ++i) {
        const std::uint32_t length =
            StreamLibrary::sampleLength(config, rng);
        EXPECT_GE(length, 7u);
        EXPECT_LE(length, 9u);
    }
}

TEST(StreamLibrary, LognormalMedianNearExpMu)
{
    Rng rng(6);
    LibraryConfig config;
    config.minLength = 2;
    config.maxLength = 100000;
    config.lengthLogMean = 2.3;  // median ~10.
    config.lengthLogSigma = 1.7;
    std::vector<std::uint32_t> lengths;
    for (int i = 0; i < 20000; ++i)
        lengths.push_back(StreamLibrary::sampleLength(config, rng));
    std::nth_element(lengths.begin(),
                     lengths.begin() + lengths.size() / 2,
                     lengths.end());
    const std::uint32_t median = lengths[lengths.size() / 2];
    EXPECT_GE(median, 8u);
    EXPECT_LE(median, 13u);
}

} // namespace
} // namespace stms
