/** @file Structural-signature tests for the standard workload suite:
 *  each preset must exhibit the paper-derived property that makes its
 *  experiment behave (Table 1 of the paper / workloads.cc). */

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "workload/workloads.hh"

namespace stms
{
namespace
{

Trace
suiteTrace(const std::string &name, std::uint64_t records = 48 * 1024)
{
    return WorkloadGenerator(makeWorkload(name, records)).generate();
}

/** Fraction of stream-region blocks visited more than once. */
double
recurrenceFraction(const Trace &trace)
{
    std::unordered_map<Addr, int> visits;
    for (const auto &record : trace.perCore[0]) {
        const std::uint64_t region = (record.addr >> 36) & 0xF;
        if (region == 1 || region == 5)  // Stream regions.
            ++visits[record.addr];
    }
    if (visits.empty())
        return 0.0;
    std::uint64_t recurring = 0;
    for (const auto &[addr, count] : visits)
        recurring += count > 1 ? 1 : 0;
    return static_cast<double>(recurring) /
           static_cast<double>(visits.size());
}

double
dependentFraction(const Trace &trace)
{
    std::uint64_t dependent = 0;
    for (const auto &record : trace.perCore[0])
        dependent += record.isDependent() ? 1 : 0;
    return static_cast<double>(dependent) /
           static_cast<double>(trace.perCore[0].size());
}

TEST(SuiteProperties, SuiteHasEightWorkloadsInPaperOrder)
{
    const auto &suite = standardSuite();
    ASSERT_EQ(suite.size(), 8u);
    EXPECT_EQ(suite[0].group, "Web");
    EXPECT_EQ(suite[4].group, "DSS");
    EXPECT_EQ(suite[5].group, "Sci");
}

TEST(SuiteProperties, MoldynIsFullySerial)
{
    Trace trace = suiteTrace("sci-moldyn");
    EXPECT_DOUBLE_EQ(dependentFraction(trace), 1.0);
}

TEST(SuiteProperties, ScientificIterationsRepeatExactly)
{
    for (const char *name : {"sci-em3d", "sci-moldyn", "sci-ocean"}) {
        WorkloadSpec spec = makeWorkload(name, 16 * 1024);
        EXPECT_TRUE(spec.loopSingleStream) << name;
        EXPECT_EQ(spec.minStreamLen, spec.maxStreamLen) << name;
    }
}

TEST(SuiteProperties, OceanIterationExceedsL2Reach)
{
    // The single-loop model needs the iteration to spill the 8MB L2
    // (128K blocks / 4 cores = 32K per core) or recurrences never
    // reach the prefetcher (workloads.cc comment).
    WorkloadSpec spec = makeWorkload("sci-ocean", 1);
    EXPECT_GT(spec.minStreamLen, 32 * 1024u);
}

TEST(SuiteProperties, DssMostlyVisitOnce)
{
    WorkloadSpec spec = makeWorkload("dss-db2", 1);
    EXPECT_GT(spec.onceFraction, 0.5);
    EXPECT_GT(spec.scanFraction, 0.2);  // Scan-dominated.
    // Far less stream recurrence than OLTP.
    const double dss = recurrenceFraction(suiteTrace("dss-db2"));
    const double oltp = recurrenceFraction(suiteTrace("oltp-db2"));
    EXPECT_LT(dss, oltp);
}

TEST(SuiteProperties, CommercialWorkloadsRecur)
{
    for (const char *name :
         {"web-apache", "web-zeus", "oltp-db2", "oltp-oracle"}) {
        EXPECT_GT(recurrenceFraction(suiteTrace(name)), 0.10) << name;
    }
}

TEST(SuiteProperties, OracleHasHighestOnChipFraction)
{
    // Sec. 5.2: Oracle's bottlenecks are on chip -> lowest speedup
    // despite real coverage; modeled as the largest hot fraction.
    const double oracle =
        makeWorkload("oltp-oracle", 1).hotFraction;
    for (const auto &info : standardSuite()) {
        if (info.name == "oltp-oracle")
            continue;
        EXPECT_GE(oracle, makeWorkload(info.name, 1).hotFraction)
            << info.name;
    }
}

TEST(SuiteProperties, ScientificIsMostMemoryBound)
{
    // Sci codes carry the least non-memory work per access, which is
    // what produces their large speedups (Fig. 4 right).
    const auto think_mid = [](const std::string &name) {
        WorkloadSpec spec = makeWorkload(name, 1);
        return (spec.thinkMin + spec.thinkMax) / 2.0;
    };
    EXPECT_LT(think_mid("sci-em3d"), think_mid("oltp-oracle"));
    EXPECT_LT(think_mid("sci-em3d"), think_mid("oltp-db2"));
    EXPECT_LT(think_mid("sci-em3d"), think_mid("web-apache"));
}

TEST(SuiteProperties, StreamLengthMediansMatchPaper)
{
    // "Half of the temporal streams in commercial workloads are
    // shorter than ten cache blocks" (Sec. 4.1): the length
    // distributions' medians must sit near 10.
    for (const char *name : {"web-apache", "oltp-db2"}) {
        WorkloadSpec spec = makeWorkload(name, 1);
        const double median = std::exp(spec.lengthLogMean);
        EXPECT_GT(median, 5.0) << name;
        EXPECT_LT(median, 15.0) << name;
    }
}

TEST(SuiteProperties, PaperReferenceValuesPopulated)
{
    for (const auto &info : standardSuite()) {
        EXPECT_GT(info.paperIdealCoverage, 0.0);
        EXPECT_GT(info.paperIdealSpeedup, 0.0);
        EXPECT_GE(info.paperMlp, 1.0);
        EXPECT_LE(info.paperMlp, 2.0);
    }
}

// --- Extended (non-paper) presets -----------------------------------

TEST(SuiteProperties, ExtendedSuiteRegistersKvStore)
{
    // kv-store is selectable by name but must NOT join the paper's
    // eight-workload presentation (figure experiments iterate
    // standardSuite()).
    EXPECT_TRUE(isKnownWorkload("kv-store"));
    bool in_extended = false;
    for (const auto &info : extendedSuite())
        in_extended |= info.name == "kv-store";
    EXPECT_TRUE(in_extended);
    for (const auto &info : standardSuite())
        EXPECT_NE(info.name, "kv-store");
}

TEST(SuiteProperties, KvStoreIsPointerChase)
{
    // Chain walks serialize: nearly every record depends on its
    // predecessor, the preset's MLP lever (Table 2 methodology).
    WorkloadSpec spec = makeWorkload("kv-store", 1);
    EXPECT_GE(spec.dependentProb, 0.9);
    EXPECT_EQ(spec.missBurstMax, 0u);
    Trace trace = suiteTrace("kv-store");
    EXPECT_GT(dependentFraction(trace), 0.6);
}

TEST(SuiteProperties, KvStoreHasNoScanComponent)
{
    // GET/SET request streams have no sequential component a stride
    // prefetcher could absorb.
    WorkloadSpec spec = makeWorkload("kv-store", 1);
    EXPECT_DOUBLE_EQ(spec.scanFraction, 0.0);
}

TEST(SuiteProperties, KvStoreRequestsAreShortAndRecurring)
{
    // Per-request streams are short (a bucket walk + value blocks)
    // and hot keys recur heavily — the temporal-streaming signal.
    WorkloadSpec spec = makeWorkload("kv-store", 1);
    const double median = std::exp(spec.lengthLogMean);
    EXPECT_LT(median, 10.0);
    EXPECT_GE(spec.meanVisits, 8.0);
    EXPECT_GT(recurrenceFraction(suiteTrace("kv-store")), 0.10);
}

} // namespace
} // namespace stms
