/**
 * @file
 * Race-stress for the telemetry TraceSink and the log sink
 * (tests/stress, label "tsan").
 *
 * The span buffers are thread-local and lock-free by design; the
 * cross-thread edges are buffer registration, flushCurrentThread()'s
 * move into the shared done-list, eventCount() observers, and the
 * final close() merge. These tests run all of them concurrently at
 * full speed — within the documented contract (close() only after
 * emitting threads joined) — so TSan can check the edges that the
 * determinism tests never exercise under load. The log half stresses
 * the sticky-line invariant: progress redraws, raw writes, and
 * leveled logging from many threads must serialize through one sink.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "telemetry/progress.hh"
#include "telemetry/trace_writer.hh"

namespace stms::telemetry
{
namespace
{

/** Temp path for trace output; tests only check close() succeeds. */
std::string
tempTracePath(const char *tag)
{
    return ::testing::TempDir() + "stress_trace_" + tag + ".json";
}

TEST(TelemetryStress, SpanBufferFlushRacesEmittersThenCloses)
{
    TraceSink sink(tempTracePath("flush"));
    installTraceSink(&sink);

    constexpr int kThreads = 6;
    constexpr int kIters = 2000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            sink.threadName("stress-" + std::to_string(t));
            for (int i = 0; i < kIters; ++i) {
                {
                    ScopedSpan span("stress", "work",
                                    i % 7 == 0 ? "tagged" : "");
                    emitCounter("stress.counter",
                                static_cast<double>(i));
                }
                if (i % 3 == 0)
                    sink.flushCurrentThread();
                if (i % 501 == 0)
                    sink.asyncBegin("stress", static_cast<std::uint64_t>(t),
                                    "async");
                if (i % 501 == 250)
                    sink.asyncEnd("stress", static_cast<std::uint64_t>(t),
                                  "async");
            }
            sink.flushCurrentThread();
        });
    }

    // Concurrent observer: eventCount() is documented as approximate
    // while emitters run, but it must be *safe* — this is the reader
    // that previously raced the lock-free buffer appends.
    std::atomic<bool> stop{false};
    std::thread observer([&] {
        std::size_t last = 0;
        while (!stop.load()) {
            const std::size_t count = sink.eventCount();
            EXPECT_GE(count + kThreads * kIters, last);
            last = count;
        }
    });

    for (auto &thread : workers)
        thread.join();
    stop.store(true);
    observer.join();
    installTraceSink(nullptr);

    // Spans + counters all arrived (thread-name events too); count
    // before close() drains the sink into the output file.
    EXPECT_GE(sink.eventCount(), static_cast<std::size_t>(
                                     kThreads * kIters * 2));
    std::string error;
    ASSERT_TRUE(sink.close(error)) << error;
    std::remove(sink.path().c_str());
}

TEST(TelemetryStress, ScopedSpanChurnAcrossManyShortLivedThreads)
{
    // Thread-local registration against one sink from a churn of
    // short-lived threads: each registers a fresh buffer under the
    // mutex, emits, flushes, and dies.
    TraceSink sink(tempTracePath("churn"));
    installTraceSink(&sink);
    for (int wave = 0; wave < 8; ++wave) {
        std::vector<std::thread> workers;
        workers.reserve(4);
        for (int t = 0; t < 4; ++t) {
            workers.emplace_back([&] {
                for (int i = 0; i < 50; ++i) {
                    ScopedSpan span("stress", "short");
                    emitCounter("stress.wave", wave);
                }
                sink.flushCurrentThread();
            });
        }
        for (auto &thread : workers)
            thread.join();
    }
    installTraceSink(nullptr);
    std::string error;
    ASSERT_TRUE(sink.close(error)) << error;
    std::remove(sink.path().c_str());
}

TEST(LogStress, StickyLineRacesLoggingAndRawWrites)
{
    // The sticky progress line and every other stderr byte must
    // serialize through the one sink mutex; hammer all entry points
    // concurrently. Keep stderr quiet by only using levels above the
    // default threshold for the bulk, plus a handful of warns.
    constexpr int kThreads = 4;
    std::vector<std::thread> workers;
    workers.reserve(kThreads + 1);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([t] {
            for (int i = 0; i < 400; ++i) {
                switch ((i + t) % 4) {
                case 0:
                    logStickyLine("stress " + std::to_string(i));
                    break;
                case 1:
                    stms_debug("stress debug %d", i);  // Gated off.
                    break;
                case 2:
                    stms_inform("stress info %d", i);  // Gated off.
                    break;
                case 3:
                    logStickyDone();
                    break;
                }
            }
        });
    }
    // One thread flips the level so the gates race their writers.
    workers.emplace_back([] {
        for (int i = 0; i < 200; ++i) {
            setLogLevel(i % 2 == 0 ? LogLevel::Error
                                   : LogLevel::Warn);
        }
        setLogLevel(LogLevel::Warn);
    });
    for (auto &thread : workers)
        thread.join();
    logStickyDone();
}

TEST(LogStress, ProgressMeterNoteRunRacesLogSink)
{
    // The real pipeline shape: worker threads complete runs (meter
    // redraws through the sticky line) while others log. The meter is
    // enabled explicitly — no TTY needed — and erased at the end.
    ProgressMeter meter(true, "stress", 12 * 50, 4);
    std::vector<std::thread> workers;
    workers.reserve(4);
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&meter, t] {
            for (int i = 0; i < 3 * 50; ++i) {
                meter.noteRun(1000, 0.001, 0.01, 0.001);
                if (i % 37 == 0)
                    stms_debug("run %d done (worker %d)", i, t);
                if (i % 97 == 0)
                    meter.renderLine();  // Concurrent reader.
            }
        });
    }
    for (auto &thread : workers)
        thread.join();
    meter.finish();
    const std::string line = meter.renderLine();
    EXPECT_NE(line.find("stress"), std::string::npos);
}

} // namespace
} // namespace stms::telemetry
