/**
 * @file
 * Race-stress for the per-run arena (tests/stress, label "tsan").
 *
 * The arena's thread-safety story is isolation, not locking: each
 * worker thread owns a private ScopedRunArena (run.cc installs one per
 * runTrace call), so arenas never need atomics — TSan proves the
 * isolation holds. Two hazards are exercised:
 *
 *  1. Thread-local scoping: N threads concurrently allocate, reset,
 *     and re-allocate through their own run arenas. Any accidental
 *     sharing of the "current arena" TLS or of block storage is a
 *     data race TSan flags.
 *  2. Cross-thread container hand-off: vectors bound to one thread's
 *     ArenaAllocator are produced on the owner thread and destroyed
 *     on a consumer thread (the chunk pipeline's pattern). Safe only
 *     because deallocate() is a no-op for arena storage — the
 *     consumer must never touch the producer's arena.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/arena.hh"

namespace stms
{
namespace
{

TEST(ArenaStress, PerThreadRunArenasAreIsolated)
{
    constexpr int kThreads = 4;
    constexpr int kRunsPerThread = 50;
    constexpr int kAllocsPerRun = 200;

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([t] {
            void *first_run_base = nullptr;
            for (int run = 0; run < kRunsPerThread; ++run) {
                ScopedRunArena scope;
                Arena *arena = currentArena();
                ASSERT_NE(arena, nullptr);
                void *base = nullptr;
                for (int i = 0; i < kAllocsPerRun; ++i) {
                    auto *slot = static_cast<std::uint64_t *>(
                        arena->allocate(sizeof(std::uint64_t) * 8, 8));
                    if (i == 0)
                        base = slot;
                    // Unsynchronized writes: racy only if arenas leak
                    // across threads.
                    slot[0] = static_cast<std::uint64_t>(t);
                    slot[7] = static_cast<std::uint64_t>(run);
                }
                if (run == 0)
                    first_run_base = base;
                else  // deterministic reuse holds per thread too
                    ASSERT_EQ(base, first_run_base);
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
}

TEST(ArenaStress, CrossThreadVectorDestructionNeverTouchesArena)
{
    using Chunk = std::vector<std::uint64_t,
                              ArenaAllocator<std::uint64_t>>;
    constexpr int kChunks = 400;

    Arena arena;  // owned (allocation-wise) by the producer thread
    std::mutex mutex;
    std::vector<Chunk> queue;
    bool done = false;

    std::thread producer([&] {
        for (int i = 0; i < kChunks; ++i) {
            Chunk chunk((ArenaAllocator<std::uint64_t>(&arena)));
            chunk.assign(64, static_cast<std::uint64_t>(i));
            std::lock_guard<std::mutex> lock(mutex);
            queue.push_back(std::move(chunk));
        }
        std::lock_guard<std::mutex> lock(mutex);
        done = true;
    });

    std::thread consumer([&] {
        int seen = 0;
        while (true) {
            Chunk chunk;
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (!queue.empty()) {
                    chunk = std::move(queue.back());
                    queue.pop_back();
                } else if (done) {
                    break;
                }
            }
            if (!chunk.empty()) {
                EXPECT_EQ(chunk.size(), 64u);
                ++seen;
            }
            // chunk destroyed here, on the consumer thread: deallocate
            // must be a no-op or TSan sees a race against the
            // producer's concurrent arena bumps.
        }
        EXPECT_GT(seen, 0);
    });

    producer.join();
    consumer.join();
}

} // namespace
} // namespace stms
