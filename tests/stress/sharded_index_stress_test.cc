/**
 * @file
 * Race-stress for ShardedIndexTable (tests/stress, label "tsan").
 *
 * Hammers the lock stripes at shards in {2, 8} with overlapping
 * lookup/update/batch traffic from several threads while an observer
 * thread concurrently reads occupancy() and stats() — the pattern the
 * contention bench and any future fleet-mode poller will run. The
 * model-level bit-identity contract is covered by
 * tests/core/sharded_index_table_test.cc; here the assertions are the
 * thread-safety invariants that stay checkable under contention:
 * per-shard stats sum exactly to the aggregate, the live occupancy
 * counter matches a full scan once quiescent, and TSan sees a clean
 * happens-before story.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/hash.hh"
#include "core/sharded_index_table.hh"

namespace stms
{
namespace
{

class ShardedIndexStress
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(ShardedIndexStress, ConcurrentMixedOpsWithObserver)
{
    const std::uint32_t shards = GetParam();
    // 256 KiB bounded table: small enough that evictions churn.
    ShardedIndexTable table(256 * 1024, 12, shards);

    constexpr int kThreads = 4;
    constexpr std::uint64_t kOpsPerThread = 20000;
    std::atomic<bool> stop_observer{false};

    // Observer: concurrent occupancy/stats/footprint reads must be
    // safe while writers churn the shards.
    std::thread observer([&] {
        std::uint64_t last_occupancy = 0;
        while (!stop_observer.load()) {
            const std::uint64_t occupancy = table.occupancy();
            // The table only ever grows toward steady state here
            // (updates insert, lookups never remove), but eviction
            // makes exact monotonicity false; just require sanity.
            EXPECT_LE(occupancy,
                      table.footprintBytes() == 0
                          ? ~std::uint64_t{0}
                          : table.footprintBytes());
            IndexTableStats aggregate = table.stats();
            EXPECT_LE(aggregate.lookupHits, aggregate.lookups);
            last_occupancy = occupancy;
        }
        (void)last_occupancy;
    });

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&table, t] {
            // Overlapping key ranges: every thread touches every
            // shard, so stripes are genuinely contended.
            std::vector<Addr> batch;
            std::vector<HistoryPointer> pointers;
            std::vector<std::optional<HistoryPointer>> out;
            for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
                const Addr block =
                    blockAddress(mixHash64(i * 31 + t) % 8192);
                if (i % 3 == 0) {
                    table.update(block,
                                 HistoryPointer{
                                     static_cast<CoreId>(t),
                                     i & HistoryPointer::kSeqMask});
                } else {
                    table.lookup(block);
                }
                if (i % 257 == 0) {
                    // Exercise the batched paths (lock-free prefetch
                    // plus per-element locking) under contention.
                    batch.clear();
                    pointers.clear();
                    for (std::uint64_t j = 0; j < 32; ++j) {
                        batch.push_back(blockAddress(
                            mixHash64(i + j) % 8192));
                        pointers.push_back(HistoryPointer{
                            static_cast<CoreId>(t), j});
                    }
                    out.assign(batch.size(), std::nullopt);
                    table.prefetchBatch(batch);
                    table.lookupBatch(batch, out);
                    table.updateBatch(batch, pointers);
                }
            }
        });
    }
    for (auto &thread : workers)
        thread.join();
    stop_observer.store(true);
    observer.join();

    // Quiescent invariants: the O(1) occupancy counter matches the
    // full recount, and per-shard stats sum exactly to the aggregate.
    EXPECT_EQ(table.occupancy(), table.occupancyScan());
    IndexTableStats sum;
    std::uint64_t ops = 0;
    for (std::uint32_t s = 0; s < table.numShards(); ++s) {
        const IndexTableStats shard = table.shardStats(s);
        sum.lookups += shard.lookups;
        sum.lookupHits += shard.lookupHits;
        sum.updates += shard.updates;
        sum.inserts += shard.inserts;
        sum.replacements += shard.replacements;
        ops += table.shardOps(s);
    }
    const IndexTableStats aggregate = table.stats();
    EXPECT_EQ(sum.lookups, aggregate.lookups);
    EXPECT_EQ(sum.lookupHits, aggregate.lookupHits);
    EXPECT_EQ(sum.updates, aggregate.updates);
    EXPECT_EQ(sum.inserts, aggregate.inserts);
    EXPECT_EQ(sum.replacements, aggregate.replacements);
    EXPECT_EQ(ops, aggregate.lookups + aggregate.updates);
}

TEST_P(ShardedIndexStress, UnboundedModeConcurrentChurn)
{
    // Unbounded (idealized) mode swaps the SoA store for a per-shard
    // hash map — a different locking footprint worth its own pass.
    const std::uint32_t shards = GetParam();
    ShardedIndexTable table(0, 12, shards);
    ASSERT_TRUE(table.unbounded());

    std::vector<std::thread> workers;
    workers.reserve(3);
    for (int t = 0; t < 3; ++t) {
        workers.emplace_back([&table, t] {
            for (std::uint64_t i = 0; i < 10000; ++i) {
                const Addr block =
                    blockAddress(mixHash64(i ^ (t * 977)) % 4096);
                if (i % 2 == 0)
                    table.update(block,
                                 HistoryPointer{
                                     static_cast<CoreId>(t), i});
                else
                    table.lookup(block);
            }
        });
    }
    std::atomic<bool> stop{false};
    std::thread observer([&] {
        while (!stop.load())
            table.occupancy();
    });
    for (auto &thread : workers)
        thread.join();
    stop.store(true);
    observer.join();
    EXPECT_EQ(table.occupancy(), table.occupancyScan());
    EXPECT_LE(table.occupancy(), 4096u);
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedIndexStress,
                         ::testing::Values(2u, 8u),
                         [](const ::testing::TestParamInfo<
                             std::uint32_t> &shard_count) {
                             return "s" + std::to_string(
                                              shard_count.param);
                         });

} // namespace
} // namespace stms
