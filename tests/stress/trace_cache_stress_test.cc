/**
 * @file
 * Race-stress for driver::TraceCache (tests/stress, label "tsan").
 *
 * Provokes the pin/evict/regenerate races of the capacity-bounded
 * refcounted cache: many threads acquire a small set of keys through
 * a capacity chosen so that almost every release triggers an eviction
 * and almost every re-acquire regenerates. Correctness oracle:
 * generation is deterministic, so every handle for a key must see the
 * same trace bytes no matter how many times the entry was dropped and
 * rebuilt, and the resident accounting must return to a consistent
 * quiescent state.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "driver/trace_cache.hh"

namespace stms::driver
{
namespace
{

/** Cheap digest of a trace's record stream (first lane is enough to
 *  catch a non-deterministic regeneration). */
std::uint64_t
laneDigest(const Trace &trace)
{
    std::uint64_t digest = 0xcbf29ce484222325ULL;
    const auto &lane = trace.perCore.at(0);
    for (std::size_t i = 0; i < lane.size(); i += 7) {
        digest ^= lane[i].addr + i;
        digest *= 0x100000001b3ULL;
    }
    return digest ^ lane.size();
}

TEST(TraceCacheStress, PinEvictRegenerateChurn)
{
    // Tiny capacity: a few records per core means each trace is a few
    // KiB, and 16 KiB capacity holds at most a couple of entries, so
    // concurrent acquires constantly evict and regenerate.
    TraceCache cache(16 * 1024);
    const std::vector<std::pair<std::string, std::uint64_t>> keys = {
        {"oltp-db2", 64}, {"oltp-db2", 128}, {"web-apache", 64},
        {"web-apache", 96}, {"dss-db2", 64},
    };

    // Reference digests, generated single-threaded up front.
    std::vector<std::uint64_t> digests;
    digests.reserve(keys.size());
    for (const auto &[workload, records] : keys) {
        TraceCache::Handle handle = cache.acquire(workload, records);
        digests.push_back(laneDigest(handle.trace()));
    }

    constexpr int kThreads = 4;
    constexpr int kItersPerThread = 120;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (int i = 0; i < kItersPerThread; ++i) {
                const std::size_t k =
                    static_cast<std::size_t>(i * 31 + t * 7) %
                    keys.size();
                TraceCache::Handle handle =
                    cache.acquire(keys[k].first, keys[k].second);
                ASSERT_TRUE(handle);
                // A regenerated trace must be bit-identical to the
                // evicted one.
                ASSERT_EQ(laneDigest(handle.trace()), digests[k]);
                // Hold two pins at once now and then so entries stay
                // pinned across another thread's eviction pass.
                if (i % 5 == 0) {
                    TraceCache::Handle second =
                        cache.acquire(keys[(k + 1) % keys.size()].first,
                                      keys[(k + 1) % keys.size()].second);
                    ASSERT_TRUE(second);
                }
            }
        });
    }
    for (auto &thread : workers)
        thread.join();

    // Quiescent: nothing pinned, so the bound holds and regeneration
    // actually happened (the whole point of the churn).
    EXPECT_LE(cache.residentBytes(), cache.capacityBytes());
    EXPECT_GT(cache.generations(), keys.size());
}

TEST(TraceCacheStress, ConcurrentFirstAcquireGeneratesOnce)
{
    // All threads race the *first* acquire of the same key: exactly
    // one generation may happen; everyone else blocks on the
    // placeholder and gets the same entry.
    for (int round = 0; round < 8; ++round) {
        TraceCache cache;  // Unbounded: nothing can evict.
        std::atomic<std::uint64_t> digest{0};
        std::vector<std::thread> workers;
        workers.reserve(4);
        for (int t = 0; t < 4; ++t) {
            workers.emplace_back([&] {
                TraceCache::Handle handle =
                    cache.acquire("oltp-db2", 96);
                const std::uint64_t mine =
                    laneDigest(handle.trace());
                std::uint64_t expected = 0;
                if (!digest.compare_exchange_strong(expected, mine)) {
                    EXPECT_EQ(mine, expected);
                }
            });
        }
        for (auto &thread : workers)
            thread.join();
        EXPECT_EQ(cache.generations(), 1u);
        EXPECT_EQ(cache.size(), 1u);
    }
}

TEST(TraceCacheStress, CapacityZeroPrivateTraces)
{
    // capacity 0: every acquire generates a private trace; handles
    // from different threads must never alias.
    TraceCache cache(0);
    std::vector<std::thread> workers;
    workers.reserve(4);
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&] {
            for (int i = 0; i < 10; ++i) {
                TraceCache::Handle handle =
                    cache.acquire("web-apache", 64);
                ASSERT_TRUE(handle);
                ASSERT_EQ(handle->perCore.at(0).size(), 64u);
            }
        });
    }
    for (auto &thread : workers)
        thread.join();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.generations(), 40u);
}

TEST(TraceCacheStress, SetCapacityRacesAcquire)
{
    // Shrinking and growing the bound while acquires are in flight:
    // eviction decisions race pin counts.
    TraceCache cache(64 * 1024);
    std::atomic<bool> stop{false};
    std::thread resizer([&] {
        std::uint64_t caps[] = {8 * 1024, 256 * 1024, 16 * 1024,
                                TraceCache::kUnbounded};
        int i = 0;
        while (!stop.load()) {
            cache.setCapacity(caps[i++ % 4]);
            std::this_thread::yield();
        }
    });
    std::vector<std::thread> workers;
    workers.reserve(3);
    for (int t = 0; t < 3; ++t) {
        workers.emplace_back([&, t] {
            const char *names[] = {"oltp-db2", "web-apache",
                                   "dss-db2"};
            for (int i = 0; i < 60; ++i) {
                TraceCache::Handle handle = cache.acquire(
                    names[(i + t) % 3],
                    64 + 32 * static_cast<std::uint64_t>(i % 3));
                ASSERT_TRUE(handle);
                ASSERT_FALSE(handle->perCore.empty());
            }
        });
    }
    for (auto &thread : workers)
        thread.join();
    stop.store(true);
    resizer.join();
}

} // namespace
} // namespace stms::driver
