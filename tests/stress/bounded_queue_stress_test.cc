/**
 * @file
 * Race-stress for driver::BoundedQueue (tests/stress, label "tsan").
 *
 * These tests are written to *provoke* the close/push/pop
 * interleavings the pipeline relies on, not to measure throughput:
 * many producers and consumers hammer a tiny queue so every blocking
 * path (push full-wait, pop empty-wait, tryPush races against close)
 * executes thousands of times per run. Under ThreadSanitizer each
 * interleaving is checked for happens-before violations; under the
 * plain build the tests still assert the queue's exactly-once
 * delivery contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "driver/bounded_queue.hh"

namespace stms::driver
{
namespace
{

TEST(BoundedQueueStress, ManyProducersManyConsumersExactlyOnce)
{
    // Capacity 2 forces both the producer full-wait and the consumer
    // empty-wait constantly.
    BoundedQueue<std::uint64_t> queue(2);
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr std::uint64_t kPerProducer = 2000;

    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&queue, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                ASSERT_TRUE(queue.push(
                    static_cast<std::uint64_t>(p) * kPerProducer + i));
            }
        });
    }

    std::vector<std::vector<std::uint64_t>> received(kConsumers);
    std::vector<std::thread> consumers;
    consumers.reserve(kConsumers);
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&queue, &received, c] {
            while (auto item = queue.pop())
                received[c].push_back(*item);
        });
    }

    for (auto &thread : producers)
        thread.join();
    queue.close();
    for (auto &thread : consumers)
        thread.join();

    // Every pushed item came out exactly once.
    std::vector<std::uint64_t> all;
    for (const auto &chunk : received)
        all.insert(all.end(), chunk.begin(), chunk.end());
    ASSERT_EQ(all.size(), kProducers * kPerProducer);
    std::sort(all.begin(), all.end());
    for (std::uint64_t i = 0; i < all.size(); ++i)
        ASSERT_EQ(all[i], i);
}

TEST(BoundedQueueStress, CloseRacesBlockedProducers)
{
    // Producers block on a full queue; close() must wake all of them
    // with push() == false, and the consumer must still drain every
    // item accepted before the close.
    for (int round = 0; round < 20; ++round) {
        BoundedQueue<int> queue(1);
        std::atomic<int> accepted{0};
        std::atomic<int> rejected{0};

        std::vector<std::thread> producers;
        producers.reserve(3);
        for (int p = 0; p < 3; ++p) {
            producers.emplace_back([&] {
                for (int i = 0; i < 100; ++i) {
                    if (queue.push(i))
                        accepted.fetch_add(1);
                    else
                        rejected.fetch_add(1);
                }
            });
        }

        std::atomic<int> drained{0};
        std::thread consumer([&] {
            while (queue.pop())
                drained.fetch_add(1);
        });

        // Close midway through the stream, from a fourth thread.
        std::thread closer([&] {
            while (accepted.load() < 5)
                std::this_thread::yield();
            queue.close();
        });

        closer.join();
        for (auto &thread : producers)
            thread.join();
        consumer.join();

        // push() returning true means the item was enqueued before
        // the close and therefore must be drained... unless it was
        // accepted in the race window and discarded by a pop that
        // already saw the closed+empty queue. The queue's contract is
        // drain-then-nullopt, so accepted == drained holds.
        EXPECT_EQ(accepted.load(), drained.load());
        EXPECT_EQ(accepted.load() + rejected.load(), 300);
    }
}

TEST(BoundedQueueStress, TryPushRacesCloseAndPop)
{
    // tryPush never blocks, so it races close() and pop() at full
    // speed; Full and Closed must leave the item with the caller.
    for (int round = 0; round < 10; ++round) {
        BoundedQueue<std::uint64_t> queue(4);
        std::atomic<bool> stop{false};
        std::atomic<std::uint64_t> pushed{0};

        std::vector<std::thread> producers;
        producers.reserve(2);
        for (int p = 0; p < 2; ++p) {
            producers.emplace_back([&] {
                std::uint64_t value = 1;
                while (!stop.load()) {
                    switch (queue.tryPush(value)) {
                    case PushResult::Ok:
                        pushed.fetch_add(1);
                        break;
                    case PushResult::Full:
                        std::this_thread::yield();
                        break;
                    case PushResult::Closed:
                        return;
                    }
                }
            });
        }

        std::atomic<std::uint64_t> popped{0};
        std::thread consumer([&] {
            while (queue.pop())
                popped.fetch_add(1);
        });

        while (pushed.load() < 500)
            std::this_thread::yield();
        queue.close();
        stop.store(true);
        for (auto &thread : producers)
            thread.join();
        consumer.join();
        EXPECT_EQ(pushed.load(), popped.load());
    }
}

TEST(BoundedQueueStress, PopDrainsAfterClose)
{
    // Items enqueued before close must all be delivered even when
    // consumers only start after the close.
    BoundedQueue<int> queue(64);
    for (int i = 0; i < 64; ++i)
        ASSERT_TRUE(queue.push(i));
    queue.close();

    std::atomic<int> drained{0};
    std::vector<std::thread> consumers;
    consumers.reserve(4);
    for (int c = 0; c < 4; ++c) {
        consumers.emplace_back([&] {
            while (queue.pop())
                drained.fetch_add(1);
        });
    }
    for (auto &thread : consumers)
        thread.join();
    EXPECT_EQ(drained.load(), 64);
    EXPECT_FALSE(queue.push(99));  // Still closed.
}

} // namespace
} // namespace stms::driver
