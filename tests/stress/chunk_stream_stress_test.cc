/**
 * @file
 * Race-stress for ChunkedWorkloadSource (tests/stress, label "tsan").
 *
 * Provokes the two documented deadlock/race hazards of the chunked
 * producer: (1) parking — with chunk=1 the per-lane skew exceeds the
 * queue bound immediately, so the producer constantly parks chunks
 * and sleeps on the pop-wakeup path; (2) early lane close — a lane
 * finishes producing long before the stream ends, so its queue closes
 * while other lanes are still filling. Also covers mid-stream
 * abandonment (destructor racing a parked producer) and concurrent
 * per-lane consumption, with byte-identity against LaneGenerator as
 * the correctness oracle.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "driver/chunk_stream.hh"
#include "workload/generators.hh"
#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

WorkloadSpec
smallSpec(std::uint32_t cores, std::uint64_t records)
{
    WorkloadSpec spec = makeWorkload("oltp-db2", records);
    spec.numCores = cores;
    return spec;
}

std::vector<TraceRecord>
referenceLane(const WorkloadSpec &spec, CoreId lane)
{
    LaneGenerator generator(spec, lane);
    std::vector<TraceRecord> records;
    while (!generator.done())
        generator.fill(records, 4096);
    return records;
}

void
expectLaneEqual(const std::vector<TraceRecord> &got,
                const std::vector<TraceRecord> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].addr, want[i].addr) << "record " << i;
        ASSERT_EQ(got[i].think, want[i].think) << "record " << i;
        ASSERT_EQ(got[i].flags, want[i].flags) << "record " << i;
    }
}

TEST(ChunkStreamStress, TinyChunksSkewedLanesStayByteIdentical)
{
    // chunk=1 maximizes parking: every record is a queue handoff, and
    // draining lanes one after another (not round-robin) forces the
    // producer to park on the undrained lanes on almost every pass.
    const WorkloadSpec spec = smallSpec(4, 512);
    ChunkedWorkloadSource source(spec, 1);
    for (CoreId lane = 0; lane < spec.numCores; ++lane) {
        auto cursor = source.openLane(lane);
        std::vector<TraceRecord> records;
        while (const TraceRecord *record = cursor->peek()) {
            records.push_back(*record);
            cursor->next();
        }
        expectLaneEqual(records, referenceLane(spec, lane));
    }
}

TEST(ChunkStreamStress, ConcurrentLaneConsumersStayByteIdentical)
{
    // One consumer thread per lane, all draining concurrently while
    // the producer fills: the real pipeline shape. Small chunks keep
    // the queue handoff machinery red-hot.
    const WorkloadSpec spec = smallSpec(4, 2048);
    ChunkedWorkloadSource source(spec, 16);

    std::vector<std::vector<TraceRecord>> lanes(spec.numCores);
    std::vector<std::thread> consumers;
    consumers.reserve(spec.numCores);
    for (CoreId lane = 0; lane < spec.numCores; ++lane) {
        consumers.emplace_back([&source, &lanes, lane] {
            auto cursor = source.openLane(lane);
            while (true) {
                auto chunk = cursor->chunk();
                if (chunk.empty())
                    break;
                lanes[lane].insert(lanes[lane].end(), chunk.begin(),
                                   chunk.end());
                cursor->consume(chunk.size());
            }
        });
    }
    for (auto &thread : consumers)
        thread.join();

    for (CoreId lane = 0; lane < spec.numCores; ++lane)
        expectLaneEqual(lanes[lane], referenceLane(spec, lane));
    EXPECT_GT(source.peakResidentChunks(), 0u);
}

TEST(ChunkStreamStress, EarlyLaneCloseDoesNotStarveOthers)
{
    // Drain lane 0 to exhaustion first (its queue closes early), then
    // the remaining lanes; the producer must keep filling the others
    // after the early close instead of sleeping forever.
    const WorkloadSpec spec = smallSpec(3, 256);
    ChunkedWorkloadSource source(spec, 1);

    auto drain = [&source](CoreId lane) {
        auto cursor = source.openLane(lane);
        std::size_t count = 0;
        while (cursor->peek()) {
            cursor->next();
            ++count;
        }
        return count;
    };
    EXPECT_EQ(drain(0), spec.recordsPerCore);
    EXPECT_EQ(drain(2), spec.recordsPerCore);
    EXPECT_EQ(drain(1), spec.recordsPerCore);
}

TEST(ChunkStreamStress, AbandonMidStreamJoinsParkedProducer)
{
    // Destroy sources at every stage of drain: never opened, partly
    // drained, one lane exhausted. The destructor must unblock a
    // producer that is parked (all queues full) or mid-tryPush and
    // join it without leaking chunks — ASan/TSan verify the teardown.
    ChunkAccounting accounting;
    for (int drained : {0, 1, 7, 64, 200}) {
        const WorkloadSpec spec = smallSpec(2, 256);
        ChunkedWorkloadSource source(spec, 1, &accounting, "stress");
        if (drained > 0) {
            auto cursor = source.openLane(0);
            for (int i = 0; i < drained && cursor->peek(); ++i)
                cursor->next();
        }
        // Source (and its cursor) destroyed here, mid-stream.
    }
    // Global accounting must return to zero once every source died.
    EXPECT_EQ(accounting.resident.load(), 0u);
}

TEST(ChunkStreamStress, ManySourcesChurnConcurrently)
{
    // The runner keeps several sources in flight; churn construction,
    // partial drain, and teardown from multiple threads at once
    // against one shared accounting block.
    ChunkAccounting accounting;
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&accounting, t] {
            for (int round = 0; round < 3; ++round) {
                const WorkloadSpec spec = smallSpec(2, 128);
                ChunkedWorkloadSource source(
                    spec, 8, &accounting,
                    "stress-" + std::to_string(t));
                for (CoreId lane = 0; lane < spec.numCores; ++lane) {
                    auto cursor = source.openLane(lane);
                    // Drain fully on even rounds, abandon on odd.
                    while (round % 2 == 0 && cursor->peek())
                        cursor->next();
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(accounting.resident.load(), 0u);
    EXPECT_GT(accounting.peak.load(), 0u);
}

} // namespace
} // namespace stms::driver
