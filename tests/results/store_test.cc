/** @file Tests of the result store: record round trips, dedupe,
 *  index rebuild, truncated-tail tolerance, gc compaction, and
 *  atomic file writes. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "results/store.hh"

namespace stms::results
{
namespace
{

namespace fs = std::filesystem;

/** Fresh store directory per test, removed on teardown. */
class StoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("stms_store_test_" +
                 std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::unique_ptr<ResultStore>
    open()
    {
        std::string error;
        auto store = ResultStore::open(dir_, error);
        EXPECT_NE(store, nullptr) << error;
        return store;
    }

    std::string dir_;
};

ResultRecord
sampleRecord(std::uint64_t fingerprint = 0x1111111111111111ULL)
{
    ResultRecord record;
    record.kind = kKindExperiment;
    record.fingerprint = Fingerprint{fingerprint};
    record.experiment = "fig7";
    record.params = {{"records", "4096"}, {"workload", "oltp-db2"}};
    record.gitDescribe = "abc1234";
    record.timestamp = "2026-07-28T00:00:00Z";
    record.scalars = {{"coverage", 0.5}, {"ipc", 1.9155272670124155}};
    Series series;
    series.title = "Figure 7";
    series.columns = {"workload", "total"};
    series.rows = {{"Apache", "0.42"}, {"quote\"d", "1.0"}};
    record.series = {series};
    return record;
}

TEST_F(StoreTest, RecordJsonLineRoundTrips)
{
    const ResultRecord original = sampleRecord();
    const std::string line = original.toJsonLine();
    EXPECT_EQ(line.find('\n'), std::string::npos);

    ResultRecord parsed;
    std::string error;
    ASSERT_TRUE(ResultRecord::parseJsonLine(line, parsed, error))
        << error;
    EXPECT_EQ(parsed.kind, original.kind);
    EXPECT_EQ(parsed.fingerprint, original.fingerprint);
    EXPECT_EQ(parsed.experiment, original.experiment);
    EXPECT_EQ(parsed.params, original.params);
    EXPECT_EQ(parsed.gitDescribe, original.gitDescribe);
    EXPECT_EQ(parsed.timestamp, original.timestamp);
    EXPECT_EQ(parsed.scalars, original.scalars);
    EXPECT_EQ(parsed.series, original.series);
}

TEST_F(StoreTest, MalformedRecordLinesRejected)
{
    ResultRecord parsed;
    std::string error;
    EXPECT_FALSE(ResultRecord::parseJsonLine("not json", parsed,
                                             error));
    EXPECT_FALSE(ResultRecord::parseJsonLine("[]", parsed, error));
    EXPECT_FALSE(ResultRecord::parseJsonLine(
        "{\"schema\": 1, \"kind\": \"experiment\"}", parsed, error));
    EXPECT_FALSE(ResultRecord::parseJsonLine(
        "{\"schema\": 99, \"kind\": \"experiment\", \"fingerprint\": "
        "\"1111111111111111\", \"experiment\": \"x\", \"scalars\": "
        "{}}",
        parsed, error));
}

TEST_F(StoreTest, AppendDedupesOnFingerprint)
{
    auto store = open();
    EXPECT_TRUE(store->append(sampleRecord()));
    // Exactly once: the identical fingerprint is skipped...
    EXPECT_FALSE(store->append(sampleRecord()));
    EXPECT_EQ(store->loadAll().size(), 1u);
    // ...unless forced (--rerun).
    EXPECT_TRUE(store->append(sampleRecord(), /*force=*/true));
    EXPECT_EQ(store->loadAll().size(), 2u);
    // A different fingerprint is a different configuration.
    EXPECT_TRUE(store->append(sampleRecord(0x2222222222222222ULL)));
    EXPECT_EQ(store->size(), 2u);
}

TEST_F(StoreTest, DedupeSurvivesReopen)
{
    open()->append(sampleRecord());
    auto reopened = open();
    EXPECT_TRUE(
        reopened->contains(Fingerprint{0x1111111111111111ULL}));
    EXPECT_FALSE(reopened->append(sampleRecord()));
}

TEST_F(StoreTest, WellFormedIndexIsTrustedUntilGc)
{
    {
        auto store = open();
        store->append(sampleRecord());
    }
    // A well-formed index is trusted as-is (that keeps open() cheap
    // on big archives) — even when it disagrees with the records...
    {
        std::ofstream out(fs::path(dir_) / "index.tsv",
                          std::ios::app);
        out << "ffffffffffffffff\texperiment\tphantom\t\n";
    }
    auto trusting = open();
    EXPECT_TRUE(
        trusting->contains(Fingerprint{0xffffffffffffffffULL}));
    // ...records themselves are unaffected, and gc rebuilds the
    // index from them, dropping the phantom entry.
    EXPECT_EQ(trusting->loadAll().size(), 1u);
    std::string error;
    EXPECT_EQ(trusting->gc(error), 0) << error;
    EXPECT_FALSE(
        trusting->contains(Fingerprint{0xffffffffffffffffULL}));
    EXPECT_TRUE(
        trusting->contains(Fingerprint{0x1111111111111111ULL}));
    // A malformed index is not trusted: it is rebuilt on open.
    {
        std::ofstream out(fs::path(dir_) / "index.tsv");
        out << "zzzz-not-hex\n";
    }
    auto rebuilt = open();
    EXPECT_FALSE(
        rebuilt->contains(Fingerprint{0xffffffffffffffffULL}));
    EXPECT_TRUE(
        rebuilt->contains(Fingerprint{0x1111111111111111ULL}));
}

TEST_F(StoreTest, FindLatestServesFromCacheAcrossAppends)
{
    auto store = open();
    EXPECT_FALSE(
        store->findLatest(Fingerprint{0x1111111111111111ULL}));
    store->append(sampleRecord());
    auto found = store->findLatest(Fingerprint{0x1111111111111111ULL});
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->scalar("coverage"), 0.5);
    // The cache tracks forced re-appends (newest wins).
    ResultRecord updated = sampleRecord();
    updated.scalars = {{"coverage", 0.75}};
    store->append(updated, /*force=*/true);
    EXPECT_EQ(store->findLatest(Fingerprint{0x1111111111111111ULL})
                  ->scalar("coverage"),
              0.75);
}

TEST_F(StoreTest, MissingIndexIsRebuiltFromRecords)
{
    {
        auto store = open();
        store->append(sampleRecord());
        store->append(sampleRecord(0x2222222222222222ULL));
    }
    fs::remove(fs::path(dir_) / "index.tsv");
    auto reopened = open();
    EXPECT_EQ(reopened->size(), 2u);
    EXPECT_FALSE(reopened->append(sampleRecord()));
    EXPECT_TRUE(fs::exists(fs::path(dir_) / "index.tsv"));
}

TEST_F(StoreTest, TruncatedTailLineIsIgnored)
{
    {
        auto store = open();
        store->append(sampleRecord());
    }
    // Simulate an interrupted append: half a record, no newline.
    {
        std::ofstream out(fs::path(dir_) / "records.jsonl",
                          std::ios::app | std::ios::binary);
        out << "{\"schema\": 1, \"kind\": \"experim";
    }
    // Opening heals the tail (terminates the fragment) so appends
    // cannot glue onto it; loads skip the malformed line.
    auto reopened = open();
    std::size_t dropped = 0;
    EXPECT_EQ(reopened->loadAll(&dropped).size(), 1u);
    EXPECT_EQ(dropped, 1u);
    EXPECT_TRUE(reopened->append(sampleRecord(0x3333333333333333ULL)));
    EXPECT_EQ(reopened->loadAll().size(), 2u);
    // gc drops the fragment line and keeps both good records.
    std::string error;
    EXPECT_EQ(reopened->gc(error), 1) << error;
    dropped = 42;
    EXPECT_EQ(reopened->loadAll(&dropped).size(), 2u);
    EXPECT_EQ(dropped, 0u);
}

TEST_F(StoreTest, LoadLatestPrefersNewestDuplicate)
{
    auto store = open();
    store->append(sampleRecord());
    ResultRecord updated = sampleRecord();
    updated.scalars = {{"coverage", 0.75}};
    store->append(updated, /*force=*/true);

    const auto latest = store->loadLatest();
    ASSERT_EQ(latest.size(), 1u);
    EXPECT_EQ(latest.at(0x1111111111111111ULL).scalar("coverage"),
              0.75);
}

TEST_F(StoreTest, GcKeepsLatestPerFingerprint)
{
    auto store = open();
    store->append(sampleRecord());
    ResultRecord updated = sampleRecord();
    updated.scalars = {{"coverage", 0.75}};
    store->append(updated, /*force=*/true);
    store->append(sampleRecord(0x2222222222222222ULL));

    std::string error;
    EXPECT_EQ(store->gc(error), 1) << error;
    const auto records = store->loadAll();
    ASSERT_EQ(records.size(), 2u);
    // The surviving 0x1111... record is the updated one.
    for (const ResultRecord &record : records) {
        if (record.fingerprint.value == 0x1111111111111111ULL) {
            EXPECT_EQ(record.scalar("coverage"), 0.75);
        }
    }
}

TEST_F(StoreTest, AtomicWriteLeavesNoTempBehind)
{
    fs::create_directories(dir_);
    const std::string path = (fs::path(dir_) / "out.json").string();
    ASSERT_TRUE(atomicWriteFile(path, "{\"ok\": true}\n"));
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "{\"ok\": true}\n");
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    // Overwrite is atomic too.
    ASSERT_TRUE(atomicWriteFile(path, "2"));
    std::ifstream again(path);
    std::string content2((std::istreambuf_iterator<char>(again)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(content2, "2");
}

TEST_F(StoreTest, SnapshotLoadsFromDirOrFile)
{
    auto store = open();
    store->append(sampleRecord());

    std::vector<ResultRecord> from_dir;
    std::string error;
    ASSERT_TRUE(loadSnapshot(dir_, from_dir, error)) << error;
    EXPECT_EQ(from_dir.size(), 1u);

    std::vector<ResultRecord> from_file;
    ASSERT_TRUE(loadSnapshot(store->recordsPath(), from_file, error))
        << error;
    EXPECT_EQ(from_file.size(), 1u);

    std::vector<ResultRecord> missing;
    EXPECT_FALSE(loadSnapshot(dir_ + "/nope.jsonl", missing, error));
}

} // namespace
} // namespace stms::results
