/** @file Tests of the results layer's minimal JSON parser — exactly
 *  the subset the store writes, plus the error paths that protect
 *  record loading from corrupt lines. */

#include <gtest/gtest.h>

#include "results/json.hh"

namespace stms::results
{
namespace
{

JsonValue
parsed(const std::string &text)
{
    JsonValue value;
    std::string error;
    EXPECT_TRUE(parseJson(text, value, error)) << error;
    return value;
}

bool
rejects(const std::string &text)
{
    JsonValue value;
    std::string error;
    return !parseJson(text, value, error);
}

TEST(Json, ScalarsParse)
{
    EXPECT_EQ(parsed("42").number, 42.0);
    EXPECT_EQ(parsed("-2.5e-3").number, -2.5e-3);
    EXPECT_EQ(parsed("\"hi\"").text, "hi");
    EXPECT_TRUE(parsed("true").boolean);
    EXPECT_FALSE(parsed("false").boolean);
    EXPECT_EQ(parsed("null").type, JsonValue::Type::Null);
}

TEST(Json, ObjectKeepsOrderAndFinds)
{
    const JsonValue value =
        parsed("{\"b\": 1, \"a\": {\"nested\": [1, 2, 3]}}");
    ASSERT_TRUE(value.isObject());
    ASSERT_EQ(value.object.size(), 2u);
    EXPECT_EQ(value.object[0].first, "b");
    const JsonValue *a = value.find("a");
    ASSERT_NE(a, nullptr);
    const JsonValue *nested = a->find("nested");
    ASSERT_NE(nested, nullptr);
    ASSERT_EQ(nested->array.size(), 3u);
    EXPECT_EQ(nested->array[2].number, 3.0);
}

TEST(Json, EscapesRoundTripThroughWriter)
{
    const std::string original = "quote\" slash\\ tab\t nl\n ctrl\x01";
    const std::string text = "\"" + jsonEscape(original) + "\"";
    EXPECT_EQ(parsed(text).text, original);
}

TEST(Json, NumbersRoundTripThroughWriter)
{
    for (const double value :
         {0.0, 42.0, 0.1, 1.0 / 3.0, 1.9155272670124155, -2.5e-7}) {
        EXPECT_EQ(parsed(jsonNumber(value)).number, value);
    }
}

TEST(Json, AccessorsTolerateAbsentAndMistyped)
{
    const JsonValue value = parsed("{\"s\": \"x\", \"n\": 7}");
    EXPECT_EQ(value.getString("s"), "x");
    EXPECT_EQ(value.getString("n", "fb"), "fb");
    EXPECT_EQ(value.getString("missing", "fb"), "fb");
    EXPECT_EQ(value.getNumber("n"), 7.0);
    EXPECT_EQ(value.getNumber("s", -1.0), -1.0);
}

TEST(Json, MalformedInputsRejected)
{
    EXPECT_TRUE(rejects(""));
    EXPECT_TRUE(rejects("{"));
    EXPECT_TRUE(rejects("{\"a\": }"));
    EXPECT_TRUE(rejects("[1, 2"));
    EXPECT_TRUE(rejects("\"unterminated"));
    EXPECT_TRUE(rejects("truthy"));
    EXPECT_TRUE(rejects("{} trailing"));
    EXPECT_TRUE(rejects("{\"a\": 1,}"));  // No trailing commas.
    EXPECT_TRUE(rejects("\"bad \\q escape\""));
}

TEST(Json, DeepNestingRejectedNotCrashed)
{
    std::string bomb;
    for (int i = 0; i < 1000; ++i)
        bomb += "[";
    EXPECT_TRUE(rejects(bomb));
}

} // namespace
} // namespace stms::results
