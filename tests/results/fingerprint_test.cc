/** @file Fingerprint-stability tests: the canonical serialization and
 *  its FNV-1a hash are an on-disk contract (docs/RESULTS.md), so
 *  golden values are pinned here — accidental schema drift must fail
 *  loudly, not silently orphan every stored record. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/hash.hh"
#include "results/fingerprint.hh"

namespace stms::results
{
namespace
{

const ParamList kParams = {{"records", "4096"},
                           {"workload", "oltp-db2"}};

TEST(Fnv1a, MatchesReferenceVectors)
{
    // Published FNV-1a test vectors; the hash may never change.
    EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171f73967e8ULL);
}

TEST(Fingerprint, HexRoundTrip)
{
    const Fingerprint fp{0x0123456789abcdefULL};
    EXPECT_EQ(fp.hex(), "0123456789abcdef");
    Fingerprint parsed;
    ASSERT_TRUE(Fingerprint::parseHex(fp.hex(), parsed));
    EXPECT_EQ(parsed, fp);
    EXPECT_FALSE(Fingerprint::parseHex("123", parsed));
    EXPECT_FALSE(Fingerprint::parseHex("0123456789ABCDEF", parsed));
    EXPECT_FALSE(Fingerprint::parseHex("0123456789abcdeg", parsed));
}

TEST(Fingerprint, KeyOrderDoesNotMatter)
{
    const ParamList permuted = {{"workload", "oltp-db2"},
                                {"records", "4096"}};
    EXPECT_EQ(fingerprintExperiment("fig7", 1, kParams),
              fingerprintExperiment("fig7", 1, permuted));
}

TEST(Fingerprint, ValueNormalizationErasesSpelling)
{
    // Numeric values get one canonical form; whitespace is trimmed.
    EXPECT_EQ(normalizeParamValue("0.1250"), "0.125");
    EXPECT_EQ(normalizeParamValue(" .125 "), "0.125");
    EXPECT_EQ(normalizeParamValue("1.25e-1"), "0.125");
    EXPECT_EQ(normalizeParamValue("4096"), "4096");
    EXPECT_EQ(normalizeParamValue("  4096\t"), "4096");
    // Non-numeric (and size-suffixed) values stay verbatim: "8K"
    // deliberately hashes differently from "8192" because parseSize
    // semantics belong to the experiment, not the fingerprint.
    EXPECT_EQ(normalizeParamValue("oltp-db2"), "oltp-db2");
    EXPECT_EQ(normalizeParamValue("8K"), "8K");
    EXPECT_EQ(normalizeParamValue("0x10"), "0x10");

    const ParamList respelled = {{"records", " 4096"},
                                 {"workload", "oltp-db2"}};
    EXPECT_EQ(fingerprintExperiment("fig7", 1, kParams),
              fingerprintExperiment("fig7", 1, respelled));
}

TEST(Fingerprint, OptionsItemsFeedTheSameHashRegardlessOfInsertion)
{
    Options forward;
    forward.set("records", "4096");
    forward.set("workload", "oltp-db2");
    Options backward;
    backward.set("workload", "oltp-db2");
    backward.set("records", "4096");
    EXPECT_EQ(fingerprintExperiment("fig7", 1, forward.items()),
              fingerprintExperiment("fig7", 1, backward.items()));
}

TEST(Fingerprint, AnySingleChangeHashesDifferent)
{
    const Fingerprint base = fingerprintExperiment("fig7", 1, kParams);
    EXPECT_NE(base, fingerprintExperiment("fig8", 1, kParams));
    EXPECT_NE(base, fingerprintExperiment("fig7", 2, kParams));
    EXPECT_NE(base,
              fingerprintExperiment(
                  "fig7", 1,
                  {{"records", "4097"}, {"workload", "oltp-db2"}}));
    EXPECT_NE(base,
              fingerprintExperiment(
                  "fig7", 1,
                  {{"records", "4096"}, {"workload", "oltp-db3"}}));
    EXPECT_NE(base,
              fingerprintExperiment("fig7", 1,
                                    {{"records", "4096"}}));
    EXPECT_NE(base,
              fingerprintExperiment("fig7", 1,
                                    {{"records", "4096"},
                                     {"workload", "oltp-db2"},
                                     {"sampling", "0.125"}}));
}

TEST(Fingerprint, RunAndExperimentKindsNeverCollide)
{
    EXPECT_NE(fingerprintExperiment("fig7", 1, kParams),
              fingerprintRun("fig7", 1, "", kParams));
}

TEST(Fingerprint, GoldenCanonicalText)
{
    // The serialization itself is the spec (docs/RESULTS.md); keep
    // in sync with kFingerprintSchema.
    EXPECT_EQ(canonicalExperimentText("fig7", 1, kParams),
              "stms.results.v1\n"
              "kind=experiment\n"
              "experiment=fig7\n"
              "schema=1\n"
              "param.records=4096\n"
              "param.workload=oltp-db2\n");
    EXPECT_EQ(canonicalRunText("fig7", 1, "web-apache/p1.000",
                               kParams),
              "stms.results.v1\n"
              "kind=run\n"
              "experiment=fig7\n"
              "schema=1\n"
              "run=web-apache/p1.000\n"
              "param.records=4096\n"
              "param.workload=oltp-db2\n");
}

TEST(Fingerprint, GoldenHashValues)
{
    // Pinned hashes: if any of these move, stored archives and
    // committed baselines are orphaned — bump kFingerprintSchema
    // and refresh baselines deliberately instead.
    EXPECT_EQ(fingerprintExperiment("fig7", 1, kParams).value,
              0x86d79561b76c2541ULL);
    EXPECT_EQ(fingerprintRun("fig7", 1, "web-apache/p1.000",
                             kParams).value,
              0xe28cdfa6f2ea12c8ULL);
    EXPECT_EQ(fingerprintExperiment("table2", 1, {}).value,
              0xe9e5c56ad0a4bd10ULL);
}

} // namespace
} // namespace stms::results
