/** @file The run codec must round-trip every field report() can read
 *  — verified against real simulation output, not hand-built
 *  structs, so newly added RunOutput fields that miss the codec fail
 *  here. */

#include <gtest/gtest.h>

#include "results/run_codec.hh"
#include "workload/generators.hh"
#include "workload/workloads.hh"

namespace stms::results
{
namespace
{

RunOutput
simulateSmallPoint()
{
    const Trace trace =
        WorkloadGenerator(makeWorkload("oltp-db2", 8 * 1024))
            .generate();
    RunConfig config;
    config.sim = defaultSimConfig(false);
    config.stms = StmsConfig{};
    return runTrace(trace, config);
}

void
expectPrefetcherEq(const PrefetcherStats &a, const PrefetcherStats &b)
{
    EXPECT_EQ(a.issued, b.issued);
    EXPECT_EQ(a.useful, b.useful);
    EXPECT_EQ(a.partial, b.partial);
    EXPECT_EQ(a.erroneous, b.erroneous);
    EXPECT_EQ(a.redundant, b.redundant);
    EXPECT_EQ(a.rejected, b.rejected);
}

TEST(RunCodec, RoundTripsRealSimulationOutput)
{
    const RunOutput original = simulateSmallPoint();
    const auto scalars = encodeRunOutput(original);

    RunOutput decoded;
    std::string error;
    ASSERT_TRUE(decodeRunOutput(scalars, decoded, error)) << error;

    EXPECT_EQ(decoded.sim.cycles, original.sim.cycles);
    EXPECT_EQ(decoded.sim.instructions, original.sim.instructions);
    EXPECT_EQ(decoded.sim.ipc, original.sim.ipc);

    EXPECT_EQ(decoded.sim.mem.accesses, original.sim.mem.accesses);
    EXPECT_EQ(decoded.sim.mem.l1Hits, original.sim.mem.l1Hits);
    EXPECT_EQ(decoded.sim.mem.prefetchHits,
              original.sim.mem.prefetchHits);
    EXPECT_EQ(decoded.sim.mem.l2Hits, original.sim.mem.l2Hits);
    EXPECT_EQ(decoded.sim.mem.partialMisses,
              original.sim.mem.partialMisses);
    EXPECT_EQ(decoded.sim.mem.offchipReads,
              original.sim.mem.offchipReads);
    EXPECT_EQ(decoded.sim.mem.offchipWrites,
              original.sim.mem.offchipWrites);

    for (std::size_t cls = 0; cls < kNumTrafficClasses; ++cls) {
        EXPECT_EQ(decoded.sim.traffic.requests[cls],
                  original.sim.traffic.requests[cls]);
        EXPECT_EQ(decoded.sim.traffic.bytes[cls],
                  original.sim.traffic.bytes[cls]);
    }
    EXPECT_EQ(decoded.sim.traffic.highPrioRequests,
              original.sim.traffic.highPrioRequests);
    EXPECT_EQ(decoded.sim.traffic.lowPrioRequests,
              original.sim.traffic.lowPrioRequests);
    EXPECT_EQ(decoded.sim.traffic.busyCycles,
              original.sim.traffic.busyCycles);

    EXPECT_EQ(decoded.sim.mlpPerCore, original.sim.mlpPerCore);
    EXPECT_EQ(decoded.sim.meanMlp, original.sim.meanMlp);
    ASSERT_EQ(decoded.sim.prefetchers.size(),
              original.sim.prefetchers.size());
    for (std::size_t i = 0; i < original.sim.prefetchers.size(); ++i)
        expectPrefetcherEq(decoded.sim.prefetchers[i],
                           original.sim.prefetchers[i]);
    EXPECT_EQ(decoded.sim.memUtilization,
              original.sim.memUtilization);
    EXPECT_EQ(decoded.sim.coverage, original.sim.coverage);
    EXPECT_EQ(decoded.sim.fullCoverage, original.sim.fullCoverage);
    EXPECT_EQ(decoded.sim.overheadPerDataByte,
              original.sim.overheadPerDataByte);

    expectPrefetcherEq(decoded.stride, original.stride);
    expectPrefetcherEq(decoded.stms, original.stms);

    const StmsStats &a = decoded.stmsInternal;
    const StmsStats &b = original.stmsInternal;
    EXPECT_EQ(a.logged, b.logged);
    EXPECT_EQ(a.historyBlockWrites, b.historyBlockWrites);
    EXPECT_EQ(a.lookups, b.lookups);
    EXPECT_EQ(a.lookupHits, b.lookupHits);
    EXPECT_EQ(a.stalePointers, b.stalePointers);
    EXPECT_EQ(a.lookupsSuppressed, b.lookupsSuppressed);
    EXPECT_EQ(a.lookupsIgnored, b.lookupsIgnored);
    EXPECT_EQ(a.streamsStarted, b.streamsStarted);
    EXPECT_EQ(a.streamsEnded, b.streamsEnded);
    EXPECT_EQ(a.streamsReplaced, b.streamsReplaced);
    EXPECT_EQ(a.endMarksWritten, b.endMarksWritten);
    EXPECT_EQ(a.pauses, b.pauses);
    EXPECT_EQ(a.resumes, b.resumes);
    EXPECT_EQ(a.skipAheads, b.skipAheads);
    EXPECT_EQ(a.followed, b.followed);
    EXPECT_EQ(a.consumed, b.consumed);
    EXPECT_EQ(a.pumpBreakRoom, b.pumpBreakRoom);
    EXPECT_EQ(a.pumpBreakWindow, b.pumpBreakWindow);
    EXPECT_EQ(a.pumpBreakOutstanding, b.pumpBreakOutstanding);
    EXPECT_EQ(a.pumpBreakPause, b.pumpBreakPause);
    EXPECT_EQ(a.queueDry, b.queueDry);

    // The Fig. 6 stream-length histogram round-trips exactly (CDF
    // and mean both depend on buckets + count + weighted sum).
    ASSERT_EQ(a.streamLengths.numBuckets(),
              b.streamLengths.numBuckets());
    EXPECT_EQ(a.streamLengths.count(), b.streamLengths.count());
    EXPECT_EQ(a.streamLengths.weightedSum(),
              b.streamLengths.weightedSum());
    for (std::size_t i = 0; i < b.streamLengths.numBuckets(); ++i)
        EXPECT_EQ(a.streamLengths.bucketCount(i),
                  b.streamLengths.bucketCount(i));

    EXPECT_EQ(decoded.stmsMetaBytes, original.stmsMetaBytes);
    EXPECT_EQ(decoded.stmsCoverage, original.stmsCoverage);
    EXPECT_EQ(decoded.stmsFullCoverage, original.stmsFullCoverage);
    EXPECT_EQ(decoded.stmsPartialCoverage,
              original.stmsPartialCoverage);

    // And the re-encoding is byte-for-byte the same scalar list.
    EXPECT_EQ(encodeRunOutput(decoded), scalars);
}

TEST(RunCodec, RejectsForeignScalars)
{
    RunOutput decoded;
    std::string error;
    EXPECT_FALSE(decodeRunOutput({}, decoded, error));
    EXPECT_FALSE(decodeRunOutput({{"codec", 99.0}}, decoded, error));
}

TEST(RunCodec, CorruptCountsFailDecodeInsteadOfAllocating)
{
    // Regression: a hand-damaged record with an absurd vector length
    // must return false (the runner then re-simulates), not drive a
    // giant or UB allocation.
    const RunOutput original = simulateSmallPoint();
    for (const char *count_key :
         {"sim.mlp.count", "sim.pf.count",
          "stms_internal.stream_lengths.buckets"}) {
        for (const double bad : {1e18, -4.0, 2.5}) {
            auto scalars = encodeRunOutput(original);
            for (auto &[name, value] : scalars)
                if (name == count_key)
                    value = bad;
            RunOutput decoded;
            std::string error;
            EXPECT_FALSE(decodeRunOutput(scalars, decoded, error))
                << count_key << " = " << bad;
        }
    }
    // Negative plain counters clamp to zero instead of UB casts.
    auto scalars = encodeRunOutput(original);
    for (auto &[name, value] : scalars)
        if (name == "sim.cycles")
            value = -7.0;
    RunOutput decoded;
    std::string error;
    ASSERT_TRUE(decodeRunOutput(scalars, decoded, error)) << error;
    EXPECT_EQ(decoded.sim.cycles, 0u);
}

} // namespace
} // namespace stms::results
