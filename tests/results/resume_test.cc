/** @file Integration tests of the store-backed runner: run-record
 *  archiving, experiment-record dedupe, sweep resume after an
 *  interruption, and fingerprint sharding — the acceptance gates of
 *  the results subsystem. */

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "driver/registry.hh"
#include "driver/results_cli.hh"
#include "driver/runner.hh"

namespace stms::driver
{
namespace
{

namespace fs = std::filesystem;

class ResumeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("stms_resume_test_" +
                 std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
        fs::remove_all(dir_);
        std::string error;
        store_ = results::ResultStore::open(dir_, error);
        ASSERT_NE(store_, nullptr) << error;

        experiment_ = ExperimentRegistry::global().find("table2");
        ASSERT_NE(experiment_, nullptr);
        options_.set("records", "512");
    }

    void TearDown() override { fs::remove_all(dir_); }

    RunnerConfig
    storeConfig(std::uint32_t shard_index = 0,
                std::uint32_t shard_count = 0, bool rerun = false)
    {
        RunnerConfig config;
        config.store = store_.get();
        config.rerun = rerun;
        config.shardIndex = shard_index;
        config.shardCount = shard_count;
        return config;
    }

    std::string dir_;
    std::unique_ptr<results::ResultStore> store_;
    const Experiment *experiment_ = nullptr;
    Options options_;
};

TEST_F(ResumeTest, FirstRunArchivesEveryPoint)
{
    ExecStats stats;
    ExperimentRunner runner(globalTraceCache(), storeConfig());
    runner.execute(*experiment_, options_, &stats);
    EXPECT_GT(stats.planned, 0u);
    EXPECT_EQ(stats.executed, stats.planned);
    EXPECT_EQ(stats.resumed, 0u);
    EXPECT_EQ(store_->size(), stats.planned);
}

TEST_F(ResumeTest, SecondRunResumesEverythingBitIdentically)
{
    ExperimentRunner runner(globalTraceCache(), storeConfig());
    ExecStats first_stats;
    const Report first =
        runner.run(*experiment_, options_, &first_stats);

    ExecStats second_stats;
    const Report second =
        runner.run(*experiment_, options_, &second_stats);
    EXPECT_EQ(second_stats.resumed, second_stats.planned);
    EXPECT_EQ(second_stats.executed, 0u);
    // Resumed reports are byte-identical to simulated ones.
    EXPECT_EQ(first.toJson(), second.toJson());
}

TEST_F(ResumeTest, ExperimentRecordAppendsExactlyOnce)
{
    ExperimentRunner runner(globalTraceCache(), storeConfig());
    const Report report = runner.run(*experiment_, options_);
    const results::ResultRecord record =
        makeExperimentRecord(*experiment_, options_, report);
    EXPECT_TRUE(store_->append(record));
    // The re-run produces the identical fingerprint: deduped.
    const Report again = runner.run(*experiment_, options_);
    const results::ResultRecord duplicate =
        makeExperimentRecord(*experiment_, options_, again);
    EXPECT_EQ(duplicate.fingerprint, record.fingerprint);
    EXPECT_FALSE(store_->append(duplicate));
    // --rerun forces an append (history retained until gc).
    EXPECT_TRUE(store_->append(duplicate, /*force=*/true));
}

TEST_F(ResumeTest, InterruptedSweepExecutesOnlyMissingPoints)
{
    // "Interrupt" a sweep by completing only shard 1/2, then
    // re-invoke the full sweep against the same store: exactly the
    // missing fingerprints execute.
    ExperimentRunner half(globalTraceCache(), storeConfig(1, 2));
    ExecStats half_stats;
    half.execute(*experiment_, options_, &half_stats);
    EXPECT_GT(half_stats.executed, 0u);
    EXPECT_GT(half_stats.sharded, 0u);
    EXPECT_EQ(half_stats.executed + half_stats.sharded,
              half_stats.planned);

    ExperimentRunner full(globalTraceCache(), storeConfig());
    ExecStats full_stats;
    const Report resumed_report =
        full.run(*experiment_, options_, &full_stats);
    EXPECT_EQ(full_stats.resumed, half_stats.executed);
    EXPECT_EQ(full_stats.executed,
              full_stats.planned - half_stats.executed);

    // And the merged report matches a store-free run bit for bit.
    ExperimentRunner plain(globalTraceCache(), RunnerConfig{});
    const Report fresh = plain.run(*experiment_, options_);
    EXPECT_EQ(resumed_report.toJson(), fresh.toJson());
}

TEST_F(ResumeTest, ShardsPartitionThePlanExactly)
{
    const std::uint32_t shards = 3;
    std::size_t executed_total = 0;
    std::size_t planned = 0;
    for (std::uint32_t i = 1; i <= shards; ++i) {
        ExperimentRunner runner(globalTraceCache(),
                                storeConfig(i, shards));
        ExecStats stats;
        runner.execute(*experiment_, options_, &stats);
        executed_total += stats.executed;
        planned = stats.planned;
    }
    // Disjoint and complete: every point ran exactly once, so the
    // merged store resumes the whole sweep without simulating.
    EXPECT_EQ(executed_total, planned);
    ExperimentRunner full(globalTraceCache(), storeConfig());
    ExecStats stats;
    full.execute(*experiment_, options_, &stats);
    EXPECT_EQ(stats.resumed, planned);
    EXPECT_EQ(stats.executed, 0u);
}

TEST_F(ResumeTest, RerunForcesReexecutionAndAppends)
{
    ExperimentRunner runner(globalTraceCache(), storeConfig());
    runner.execute(*experiment_, options_);
    const std::size_t archived = store_->loadAll().size();

    ExperimentRunner rerun(globalTraceCache(),
                           storeConfig(0, 0, /*rerun=*/true));
    ExecStats stats;
    rerun.execute(*experiment_, options_, &stats);
    EXPECT_EQ(stats.executed, stats.planned);
    EXPECT_EQ(stats.resumed, 0u);
    EXPECT_EQ(store_->loadAll().size(), archived + stats.planned);
}

TEST_F(ResumeTest, DifferentOptionsDoNotResumeEachOther)
{
    ExperimentRunner runner(globalTraceCache(), storeConfig());
    runner.execute(*experiment_, options_);

    Options other;
    other.set("records", "1024");
    ExecStats stats;
    runner.execute(*experiment_, other, &stats);
    EXPECT_EQ(stats.resumed, 0u);
    EXPECT_EQ(stats.executed, stats.planned);
}

} // namespace
} // namespace stms::driver
