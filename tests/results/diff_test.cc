/** @file Diff-engine tests: tolerance semantics, added/removed/
 *  changed classification, metric-set drift, and duplicate
 *  (rerun-history) handling. */

#include <gtest/gtest.h>

#include "results/diff.hh"

namespace stms::results
{
namespace
{

ResultRecord
experimentRecord(std::uint64_t fingerprint, const std::string &name,
                 std::vector<std::pair<std::string, double>> scalars)
{
    ResultRecord record;
    record.kind = kKindExperiment;
    record.fingerprint = Fingerprint{fingerprint};
    record.experiment = name;
    record.scalars = std::move(scalars);
    return record;
}

TEST(DiffTolerances, CloseSemantics)
{
    DiffTolerances tol;
    tol.absTol = 1e-6;
    tol.relTol = 0.0;
    EXPECT_TRUE(tol.close("m", 1.0, 1.0));
    EXPECT_TRUE(tol.close("m", 1.0, 1.0 + 5e-7));
    EXPECT_FALSE(tol.close("m", 1.0, 1.0 + 5e-6));

    tol.absTol = 0.0;
    tol.relTol = 0.01;
    EXPECT_TRUE(tol.close("m", 100.0, 100.9));
    EXPECT_FALSE(tol.close("m", 100.0, 102.0));
    // Exact zero-vs-zero always matches even with zero tolerances.
    tol.relTol = 0.0;
    EXPECT_TRUE(tol.close("m", 0.0, 0.0));
    EXPECT_FALSE(tol.close("m", 0.0, 1e-30));
}

TEST(DiffTolerances, PerMetricOverride)
{
    DiffTolerances tol;
    tol.absTol = 0.0;
    tol.relTol = 0.0;
    tol.perMetricRel["noisy.metric"] = 0.5;
    EXPECT_TRUE(tol.close("noisy.metric", 1.0, 1.4));
    EXPECT_FALSE(tol.close("other.metric", 1.0, 1.4));
}

TEST(DiffTolerances, FromOptions)
{
    Options options;
    options.set("abs_tol", "1e-3");
    options.set("rel_tol", "0.02");
    options.set("tol.web-apache.mlp", "0.5");
    const DiffTolerances tol = tolerancesFromOptions(options);
    EXPECT_EQ(tol.absTol, 1e-3);
    EXPECT_EQ(tol.relTol, 0.02);
    ASSERT_EQ(tol.perMetricRel.count("web-apache.mlp"), 1u);
    EXPECT_EQ(tol.perMetricRel.at("web-apache.mlp"), 0.5);
}

TEST(Diff, IdenticalSnapshotsAreClean)
{
    const std::vector<ResultRecord> snapshot = {
        experimentRecord(1, "fig7", {{"a", 1.0}, {"b", 2.0}}),
        experimentRecord(2, "fig8", {{"c", 3.0}}),
    };
    const DiffResult diff =
        diffSnapshots(snapshot, snapshot, DiffTolerances{});
    EXPECT_TRUE(diff.clean());
    EXPECT_EQ(diff.matched, 2u);
    EXPECT_EQ(diff.scalarsCompared, 3u);
    EXPECT_NE(renderDiff(diff).find("CLEAN"), std::string::npos);
}

TEST(Diff, DetectsInjectedScalarChange)
{
    const std::vector<ResultRecord> before = {
        experimentRecord(1, "fig7", {{"a", 1.0}, {"b", 2.0}})};
    const std::vector<ResultRecord> after = {
        experimentRecord(1, "fig7", {{"a", 1.0}, {"b", 2.5}})};
    const DiffResult diff =
        diffSnapshots(before, after, DiffTolerances{});
    EXPECT_FALSE(diff.clean());
    ASSERT_EQ(diff.changed.size(), 1u);
    ASSERT_EQ(diff.changed[0].metrics.size(), 1u);
    EXPECT_EQ(diff.changed[0].metrics[0].metric, "b");
    EXPECT_EQ(diff.changed[0].metrics[0].before, 2.0);
    EXPECT_EQ(diff.changed[0].metrics[0].after, 2.5);
    EXPECT_NE(renderDiff(diff).find("DIRTY"), std::string::npos);
}

TEST(Diff, ToleranceAbsorbsSmallDrift)
{
    const std::vector<ResultRecord> before = {
        experimentRecord(1, "fig7", {{"a", 100.0}})};
    const std::vector<ResultRecord> after = {
        experimentRecord(1, "fig7", {{"a", 100.5}})};
    DiffTolerances tight;
    EXPECT_FALSE(diffSnapshots(before, after, tight).clean());
    DiffTolerances loose;
    loose.relTol = 0.01;
    EXPECT_TRUE(diffSnapshots(before, after, loose).clean());
}

TEST(Diff, AddedIsCleanRemovedIsNot)
{
    const std::vector<ResultRecord> base = {
        experimentRecord(1, "fig7", {{"a", 1.0}})};
    const std::vector<ResultRecord> grown = {
        experimentRecord(1, "fig7", {{"a", 1.0}}),
        experimentRecord(2, "fig8", {{"c", 3.0}})};

    // A store that grew new configurations still matches baseline.
    const DiffResult added =
        diffSnapshots(base, grown, DiffTolerances{});
    EXPECT_TRUE(added.clean());
    ASSERT_EQ(added.added.size(), 1u);
    EXPECT_EQ(added.added[0].experiment, "fig8");

    // A baseline configuration missing from the store is a failure.
    const DiffResult removed =
        diffSnapshots(grown, base, DiffTolerances{});
    EXPECT_FALSE(removed.clean());
    ASSERT_EQ(removed.removed.size(), 1u);
    EXPECT_EQ(removed.removed[0].experiment, "fig8");
}

TEST(Diff, MetricSetDriftIsChanged)
{
    // A renamed metric shows as only-before + only-after: the
    // schema changed without a schemaVersion() bump.
    const std::vector<ResultRecord> before = {
        experimentRecord(1, "fig7", {{"old_name", 1.0}})};
    const std::vector<ResultRecord> after = {
        experimentRecord(1, "fig7", {{"new_name", 1.0}})};
    const DiffResult diff =
        diffSnapshots(before, after, DiffTolerances{});
    EXPECT_FALSE(diff.clean());
    ASSERT_EQ(diff.changed.size(), 1u);
    EXPECT_EQ(diff.changed[0].metrics.size(), 2u);
}

TEST(Diff, RunRecordsAreIgnored)
{
    ResultRecord run;
    run.kind = kKindRun;
    run.fingerprint = Fingerprint{7};
    run.experiment = "fig7";
    run.run = "web-apache";
    run.scalars = {{"sim.ipc", 1.0}};
    const DiffResult diff = diffSnapshots({run}, {}, DiffTolerances{});
    EXPECT_TRUE(diff.clean());
    EXPECT_EQ(diff.matched, 0u);
}

TEST(Diff, LatestDuplicateWins)
{
    // --rerun appends history; the diff compares newest vs newest.
    std::vector<ResultRecord> before = {
        experimentRecord(1, "fig7", {{"a", 1.0}}),
        experimentRecord(1, "fig7", {{"a", 2.0}})};
    std::vector<ResultRecord> after = {
        experimentRecord(1, "fig7", {{"a", 2.0}})};
    EXPECT_TRUE(diffSnapshots(before, after, DiffTolerances{}).clean());
    after[0].scalars[0].second = 1.0;
    EXPECT_FALSE(
        diffSnapshots(before, after, DiffTolerances{}).clean());
}

} // namespace
} // namespace stms::results
