/** @file Streaming-ingestion tests: chunk-boundary correctness (the
 *  simulation must be bit-identical for chunk sizes 1, 7, and
 *  effectively-infinite), the bounded-residency guarantee, and the
 *  TraceSource/RecordCursor contracts the sim layer relies on. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "sim/run.hh"
#include "trace_io/format.hh"
#include "trace_io/native.hh"
#include "workload/generators.hh"
#include "workload/workloads.hh"

namespace stms
{
namespace
{

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** Workload small enough for many runs, busy enough to matter. */
Trace
testTrace()
{
    WorkloadGenerator generator(makeWorkload("web-apache", 2048));
    return generator.generate();
}

/** Exact comparison of every scalar two runs produce. */
void
expectIdenticalOutputs(const RunOutput &a, const RunOutput &b)
{
    EXPECT_EQ(a.sim.cycles, b.sim.cycles);
    EXPECT_EQ(a.sim.instructions, b.sim.instructions);
    EXPECT_EQ(a.sim.ipc, b.sim.ipc);
    EXPECT_EQ(a.sim.meanMlp, b.sim.meanMlp);
    EXPECT_EQ(a.stmsCoverage, b.stmsCoverage);
    EXPECT_EQ(a.stmsFullCoverage, b.stmsFullCoverage);
    EXPECT_EQ(a.stmsPartialCoverage, b.stmsPartialCoverage);
    EXPECT_EQ(a.stms.useful, b.stms.useful);
    EXPECT_EQ(a.stms.partial, b.stms.partial);
    EXPECT_EQ(a.stms.erroneous, b.stms.erroneous);
    EXPECT_EQ(a.stride.useful, b.stride.useful);
    EXPECT_EQ(a.stmsMetaBytes, b.stmsMetaBytes);
    for (std::size_t cls = 0; cls < kNumTrafficClasses; ++cls) {
        EXPECT_EQ(a.sim.traffic.bytesFor(
                      static_cast<TrafficClass>(cls)),
                  b.sim.traffic.bytesFor(
                      static_cast<TrafficClass>(cls)))
            << cls;
    }
}

RunConfig
stmsRunConfig()
{
    RunConfig config;
    config.sim = defaultSimConfig(false);
    config.stms.emplace();
    return config;
}

TEST(Streaming, ChunkSizeNeverChangesTheSimulation)
{
    const Trace trace = testTrace();
    const std::string path = tempPath("stms_stream_chunks.stms");
    ASSERT_TRUE(trace_io::save(trace, path));

    const RunConfig config = stmsRunConfig();
    const RunOutput direct = runTrace(trace, config);

    // Chunk sizes 1 and 7 hammer every boundary alignment; the last
    // is effectively infinite (one chunk per lane).
    for (const std::uint64_t chunk :
         {std::uint64_t{1}, std::uint64_t{7},
          std::uint64_t{1} << 40}) {
        std::string error;
        trace_io::IngestSpec spec;
        spec.chunkRecords = chunk;
        spec.inputs.push_back(
            {path, trace_io::TraceFormat::Native});
        auto source = trace_io::openSource(spec, error);
        ASSERT_NE(source, nullptr) << error;
        EXPECT_EQ(source->totalRecords(), trace.totalRecords());

        const RunOutput streamed = runTrace(*source, config);
        SCOPED_TRACE("chunk=" + std::to_string(chunk));
        expectIdenticalOutputs(direct, streamed);

        // The bounded-residency guarantee: no lane cursor ever held
        // more than one chunk (or one lane, whichever is smaller).
        EXPECT_LE(source->peakChunkRecords(),
                  std::min<std::uint64_t>(chunk,
                                          trace.perCore[0].size()));
        EXPECT_GT(source->peakChunkRecords(), 0u);
    }
    std::remove(path.c_str());
}

TEST(Streaming, VectorAndStreamingCursorsAgree)
{
    const Trace trace = testTrace();
    const std::string path = tempPath("stms_stream_agree.stms");
    ASSERT_TRUE(trace_io::save(trace, path));

    std::string error;
    trace_io::IngestSpec spec;
    spec.chunkRecords = 13;
    spec.inputs.push_back({path, trace_io::TraceFormat::Auto});
    auto streaming = trace_io::openSource(spec, error);
    ASSERT_NE(streaming, nullptr) << error;
    trace_io::MemoryTraceSource memory(trace);

    ASSERT_EQ(streaming->numCores(), memory.numCores());
    EXPECT_EQ(streaming->name(), memory.name());
    for (CoreId lane = 0; lane < memory.numCores(); ++lane) {
        auto a = memory.openLane(lane);
        auto b = streaming->openLane(lane);
        std::uint64_t count = 0;
        while (true) {
            const TraceRecord *ra = a->peek();
            const TraceRecord *rb = b->peek();
            ASSERT_EQ(ra == nullptr, rb == nullptr)
                << "lane " << lane << " length mismatch at " << count;
            if (!ra)
                break;
            ASSERT_EQ(ra->addr, rb->addr);
            ASSERT_EQ(ra->think, rb->think);
            ASSERT_EQ(ra->flags, rb->flags);
            a->next();
            b->next();
            ++count;
        }
        EXPECT_EQ(count, trace.perCore[lane].size());
    }
    std::remove(path.c_str());
}

TEST(Streaming, RepeatedPeekIsStable)
{
    std::vector<TraceRecord> records(3);
    records[1].addr = 0x40;
    trace_io::VectorCursor cursor(records);
    ASSERT_NE(cursor.peek(), nullptr);
    EXPECT_EQ(cursor.peek(), cursor.peek());  // No side effects.
    cursor.next();
    EXPECT_EQ(cursor.peek()->addr, 0x40u);
    cursor.next();
    cursor.next();
    EXPECT_EQ(cursor.peek(), nullptr);
    EXPECT_EQ(cursor.peek(), nullptr);  // Stable at end, too.
}

TEST(Streaming, MemoryTraceSourceReportsTraceShape)
{
    Trace trace;
    trace.name = "shape";
    trace.perCore.resize(3);
    trace.perCore[1].resize(5);
    trace_io::MemoryTraceSource source(trace);
    EXPECT_EQ(source.numCores(), 3u);
    EXPECT_EQ(source.totalRecords(), 5u);
    EXPECT_EQ(source.name(), "shape");
    auto lane = source.openLane(2);
    EXPECT_EQ(lane->peek(), nullptr);  // Empty lane is valid.
}

} // namespace
} // namespace stms
