/** @file Native trace format tests: v2 round trips, the documented
 *  load() error contract (bad magic / version / truncation), legacy
 *  v1 compatibility, and spec-derived golden files. The goldens in
 *  tests/data/ were written byte-by-byte from docs/TRACE_FORMATS.md,
 *  independently of this implementation, so they pin the on-disk
 *  layout itself. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "trace_io/native.hh"

#ifndef STMS_TEST_DATA_DIR
#error "STMS_TEST_DATA_DIR must point at tests/data"
#endif

namespace stms
{
namespace
{

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

std::string
dataPath(const char *name)
{
    return std::string(STMS_TEST_DATA_DIR) + "/" + name;
}

TraceRecord
rec(Addr addr, std::uint16_t think, std::uint8_t flags)
{
    TraceRecord record;
    record.addr = addr;
    record.think = think;
    record.flags = flags;
    return record;
}

Trace
sampleTrace()
{
    Trace trace;
    trace.name = "sample";
    trace.perCore.resize(2);
    for (CoreId c = 0; c < 2; ++c) {
        for (int i = 0; i < 100; ++i) {
            trace.perCore[c].push_back(
                rec(blockAddress(static_cast<Addr>(c) * 1000 +
                                 static_cast<Addr>(i)),
                    static_cast<std::uint16_t>(i),
                    static_cast<std::uint8_t>(i % 4)));
        }
    }
    return trace;
}

void
expectEqualTraces(const Trace &a, const Trace &b)
{
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.numCores(), b.numCores());
    for (CoreId c = 0; c < a.numCores(); ++c) {
        ASSERT_EQ(a.perCore[c].size(), b.perCore[c].size()) << c;
        for (std::size_t i = 0; i < a.perCore[c].size(); ++i) {
            EXPECT_EQ(a.perCore[c][i].addr, b.perCore[c][i].addr);
            EXPECT_EQ(a.perCore[c][i].think, b.perCore[c][i].think);
            EXPECT_EQ(a.perCore[c][i].flags, b.perCore[c][i].flags);
        }
    }
}

std::vector<unsigned char>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeAll(const std::string &path,
         const std::vector<unsigned char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** The records golden.stms / golden_v1.stms encode (see the
 *  generator snippet in docs/TRACE_FORMATS.md). */
Trace
goldenTrace()
{
    Trace trace;
    trace.name = "golden";
    trace.perCore = {
        {rec(0x1000, 5, 0), rec(0x2040, 7, TraceRecord::kWrite),
         rec(0x30c0, 9, TraceRecord::kDependent)},
        {rec(0x11000, 0,
             TraceRecord::kWrite | TraceRecord::kDependent),
         rec(0x22080, 65535, 0)},
    };
    return trace;
}

TEST(NativeTraceIo, SaveLoadRoundTrip)
{
    const std::string path = tempPath("stms_native_rt.stms");
    const Trace original = sampleTrace();
    ASSERT_TRUE(trace_io::save(original, path));

    Trace loaded;
    ASSERT_TRUE(trace_io::load(loaded, path));
    expectEqualTraces(original, loaded);
    std::remove(path.c_str());
}

TEST(NativeTraceIo, GoldenV2FileMatchesSpec)
{
    Trace loaded;
    ASSERT_TRUE(trace_io::load(loaded, dataPath("golden.stms")));
    expectEqualTraces(goldenTrace(), loaded);
}

TEST(NativeTraceIo, GoldenV1LegacyFileStillLoads)
{
    Trace loaded;
    ASSERT_TRUE(trace_io::load(loaded, dataPath("golden_v1.stms")));
    expectEqualTraces(goldenTrace(), loaded);
}

TEST(NativeTraceIo, SaveWritesTheGoldenBytesExactly)
{
    // The writer must emit the spec byte-for-byte, not merely
    // something its own reader accepts.
    const std::string path = tempPath("stms_native_golden.stms");
    ASSERT_TRUE(trace_io::save(goldenTrace(), path));
    EXPECT_EQ(readAll(path), readAll(dataPath("golden.stms")));
    std::remove(path.c_str());
}

TEST(NativeTraceIo, LoadRejectsMissingFile)
{
    Trace trace = sampleTrace();
    EXPECT_FALSE(trace_io::load(trace, "/nonexistent/path/t.stms"));
    EXPECT_EQ(trace.totalRecords(), 0u);  // Reset, not left stale.
}

TEST(NativeTraceIo, LoadRejectsBadMagic)
{
    const std::string path = tempPath("stms_native_garbage.stms");
    writeAll(path, std::vector<unsigned char>(64, 0x5a));

    Trace trace = sampleTrace();
    EXPECT_FALSE(trace_io::load(trace, path));
    EXPECT_EQ(trace.totalRecords(), 0u);
    EXPECT_TRUE(trace.name.empty());
    std::remove(path.c_str());
}

TEST(NativeTraceIo, LoadRejectsUnsupportedVersion)
{
    const std::string path = tempPath("stms_native_badver.stms");
    std::vector<unsigned char> bytes =
        readAll(dataPath("golden.stms"));
    bytes[4] = 99;  // Version field (header offset 4).

    writeAll(path, bytes);
    Trace trace = sampleTrace();
    EXPECT_FALSE(trace_io::load(trace, path));
    EXPECT_EQ(trace.totalRecords(), 0u);

    bytes[4] = 0;  // Version 0 predates v1: equally unsupported.
    writeAll(path, bytes);
    EXPECT_FALSE(trace_io::load(trace, path));
    std::remove(path.c_str());
}

TEST(NativeTraceIo, LoadRejectsTruncation)
{
    const std::vector<unsigned char> golden =
        readAll(dataPath("golden.stms"));
    const std::string path = tempPath("stms_native_trunc.stms");

    // Every proper prefix must be rejected: mid-header, mid-name,
    // mid-lane-table, and mid-payload truncations alike.
    for (std::size_t keep : {4u, 17u, 40u, 60u,
                             static_cast<unsigned>(golden.size() - 1)}) {
        writeAll(path, {golden.begin(),
                        golden.begin() +
                            static_cast<std::ptrdiff_t>(keep)});
        Trace trace = sampleTrace();
        EXPECT_FALSE(trace_io::load(trace, path)) << keep;
        EXPECT_EQ(trace.totalRecords(), 0u) << keep;
    }
    std::remove(path.c_str());
}

TEST(NativeTraceIo, LoadRejectsTrailingBytes)
{
    std::vector<unsigned char> bytes =
        readAll(dataPath("golden.stms"));
    bytes.push_back(0);
    const std::string path = tempPath("stms_native_trail.stms");
    writeAll(path, bytes);

    Trace trace;
    EXPECT_FALSE(trace_io::load(trace, path));
    std::remove(path.c_str());
}

TEST(NativeTraceIo, LoadRejectsImplausibleHeaderCounts)
{
    std::vector<unsigned char> bytes =
        readAll(dataPath("golden.stms"));
    const std::string path = tempPath("stms_native_counts.stms");

    bytes[8] = 0xff;  // numCores -> 0x5ff = 1535 > kNativeMaxCores.
    bytes[9] = 0x05;
    writeAll(path, bytes);
    Trace trace;
    EXPECT_FALSE(trace_io::load(trace, path));

    // A crafted lane count big enough to wrap the offset arithmetic
    // must be rejected by the per-lane cap, not ride through the
    // file-size consistency check into a giant allocation.
    bytes = readAll(dataPath("golden.stms"));
    bytes[0x26 + 7] = 0x20;  // Lane 0 count |= 0x20 << 56.
    writeAll(path, bytes);
    EXPECT_FALSE(trace_io::load(trace, path));
    EXPECT_EQ(trace.totalRecords(), 0u);
    std::remove(path.c_str());
}

TEST(NativeTraceReader, StreamsLanesIndependently)
{
    const std::string path = tempPath("stms_native_stream.stms");
    const Trace original = sampleTrace();
    ASSERT_TRUE(trace_io::save(original, path));

    std::string error;
    auto reader = trace_io::NativeTraceReader::open(path, error);
    ASSERT_NE(reader, nullptr) << error;
    EXPECT_EQ(reader->meta().name, "sample");
    EXPECT_EQ(reader->meta().numCores, 2u);
    EXPECT_EQ(reader->meta().totalRecords, 200u);
    ASSERT_EQ(reader->meta().laneRecords.size(), 2u);
    EXPECT_EQ(reader->meta().laneRecords[0], 100u);

    // Interleave chunked reads across both lanes; each lane must
    // reproduce its records in order regardless of the other.
    std::vector<TraceRecord> lane0, lane1, chunk;
    bool progress = true;
    while (progress) {
        progress = false;
        if (reader->readChunk(0, 7, chunk) > 0) {
            lane0.insert(lane0.end(), chunk.begin(), chunk.end());
            progress = true;
        }
        if (reader->readChunk(1, 13, chunk) > 0) {
            lane1.insert(lane1.end(), chunk.begin(), chunk.end());
            progress = true;
        }
    }
    ASSERT_EQ(lane0.size(), 100u);
    ASSERT_EQ(lane1.size(), 100u);
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_EQ(lane0[i].addr, original.perCore[0][i].addr);
        EXPECT_EQ(lane1[i].addr, original.perCore[1][i].addr);
        EXPECT_EQ(lane1[i].think, original.perCore[1][i].think);
        EXPECT_EQ(lane1[i].flags, original.perCore[1][i].flags);
    }
    EXPECT_EQ(reader->readChunk(0, 7, chunk), 0u);  // Exhausted.
    std::remove(path.c_str());
}

TEST(NativeTraceIo, EmptyLanesAndEmptyNameSurvive)
{
    Trace trace;
    trace.perCore.resize(3);  // No name, lane 1 empty.
    trace.perCore[0].push_back(rec(0x40, 1, 0));
    trace.perCore[2].push_back(rec(0x80, 2, 1));

    const std::string path = tempPath("stms_native_empty.stms");
    ASSERT_TRUE(trace_io::save(trace, path));
    Trace loaded;
    ASSERT_TRUE(trace_io::load(loaded, path));
    expectEqualTraces(trace, loaded);
    std::remove(path.c_str());
}

} // namespace
} // namespace stms
