/** @file ChampSim trace I/O tests: the 64-byte record layout, the
 *  documented instruction->record mapping (think from instruction
 *  gaps, dependence through registers), exporter round trips,
 *  compressed-input passthrough, and a spec-derived golden file. */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "trace_io/champsim.hh"
#include "trace_io/format.hh"

#ifndef STMS_TEST_DATA_DIR
#error "STMS_TEST_DATA_DIR must point at tests/data"
#endif

namespace stms
{
namespace
{

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

std::string
dataPath(const char *name)
{
    return std::string(STMS_TEST_DATA_DIR) + "/" + name;
}

std::vector<TraceRecord>
readLane(trace_io::TraceReader &reader, CoreId lane)
{
    std::vector<TraceRecord> records, chunk;
    while (reader.readChunk(lane, 7, chunk) > 0)
        records.insert(records.end(), chunk.begin(), chunk.end());
    return records;
}

TraceRecord
rec(Addr addr, std::uint16_t think, std::uint8_t flags)
{
    TraceRecord record;
    record.addr = addr;
    record.think = think;
    record.flags = flags;
    return record;
}

TEST(ChampSim, GoldenFileDecodesPerSpec)
{
    // golden.champsim (tests/data) was hand-assembled from the
    // format doc: 2 fillers, a load, 1 filler, a dependent store,
    // then one instruction carrying two loads and a store.
    std::string error;
    auto reader = trace_io::ChampSimTraceReader::open(
        {dataPath("golden.champsim")}, error);
    ASSERT_NE(reader, nullptr) << error;
    EXPECT_EQ(reader->meta().numCores, 1u);
    EXPECT_EQ(reader->meta().totalRecords, 0u);  // Unknown up front.

    const std::vector<TraceRecord> records = readLane(*reader, 0);
    const std::vector<TraceRecord> expected = {
        rec(0x1000, 2, 0),
        rec(0x2040, 1, TraceRecord::kWrite | TraceRecord::kDependent),
        rec(0x30c0, 0, 0),
        rec(0x4100, 0, 0),
        rec(0x5140, 0, TraceRecord::kWrite),
    };
    ASSERT_EQ(records.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(records[i].addr, expected[i].addr) << i;
        EXPECT_EQ(records[i].think, expected[i].think) << i;
        EXPECT_EQ(records[i].flags, expected[i].flags) << i;
    }
}

TEST(ChampSim, ExportRoundTripsRecordsExactly)
{
    Trace trace;
    trace.name = "rt";
    trace.perCore.resize(2);
    // Lane 0 exercises think extremes, writes, and dependence
    // chains; lane 1 checks lanes stay independent. A lane's first
    // record must not be dependent (the flag cannot survive the
    // format and the core model ignores it anyway).
    trace.perCore[0] = {
        rec(0x1000, 0, 0),
        rec(0x2040, 3, TraceRecord::kDependent),
        rec(0x30c0, 0, TraceRecord::kWrite | TraceRecord::kDependent),
        rec(0x4100, 500, TraceRecord::kWrite),
        rec(0x5140, 1, TraceRecord::kDependent),
    };
    trace.perCore[1] = {rec(0x777000, 9, 0),
                        rec(0x778000, 2, TraceRecord::kWrite)};

    const std::string base = tempPath("stms_cs_rt.champsim");
    const std::vector<std::string> paths =
        trace_io::writeChampSim(trace, base);
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_NE(paths[0].find("core0"), std::string::npos);

    std::string error;
    auto reader = trace_io::ChampSimTraceReader::open(paths, error);
    ASSERT_NE(reader, nullptr) << error;
    for (CoreId lane = 0; lane < 2; ++lane) {
        const std::vector<TraceRecord> records =
            readLane(*reader, lane);
        const auto &expected = trace.perCore[lane];
        ASSERT_EQ(records.size(), expected.size()) << lane;
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_EQ(records[i].addr, expected[i].addr) << i;
            EXPECT_EQ(records[i].think, expected[i].think) << i;
            EXPECT_EQ(records[i].flags, expected[i].flags) << i;
        }
    }
    for (const std::string &path : paths)
        std::remove(path.c_str());
}

TEST(ChampSim, SingleCoreExportUsesExactPath)
{
    Trace trace;
    trace.perCore.resize(1);
    trace.perCore[0] = {rec(0x40, 0, 0)};
    const std::string path = tempPath("stms_cs_single.champsim");
    const std::vector<std::string> paths =
        trace_io::writeChampSim(trace, path);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0], path);
    // One record with think 0 => exactly one 64-byte instruction.
    EXPECT_EQ(std::filesystem::file_size(path), 64u);
    std::remove(path.c_str());
}

TEST(ChampSim, EmptyLaneRoundTrips)
{
    // A core with no records exports as a 0-byte file, which the
    // reader must accept as a valid empty lane.
    Trace trace;
    trace.perCore.resize(2);
    trace.perCore[0] = {rec(0x40, 1, 0)};

    const std::string base = tempPath("stms_cs_empty.champsim");
    const std::vector<std::string> paths =
        trace_io::writeChampSim(trace, base);
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_EQ(std::filesystem::file_size(paths[1]), 0u);

    std::string error;
    auto reader = trace_io::ChampSimTraceReader::open(paths, error);
    ASSERT_NE(reader, nullptr) << error;
    EXPECT_EQ(readLane(*reader, 0).size(), 1u);
    EXPECT_TRUE(readLane(*reader, 1).empty());
    for (const std::string &path : paths)
        std::remove(path.c_str());
}

TEST(ChampSim, OpenRejectsNonMultipleOf64)
{
    const std::string path = tempPath("stms_cs_bad.champsim");
    std::ofstream(path, std::ios::binary) << "not a champsim trace";
    std::string error;
    EXPECT_EQ(trace_io::ChampSimTraceReader::open({path}, error),
              nullptr);
    EXPECT_NE(error.find("64"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ChampSim, GzipPassthroughMatchesPlainFile)
{
    if (std::system("command -v gzip > /dev/null 2>&1") != 0)
        GTEST_SKIP() << "gzip not installed";

    const std::string plain = tempPath("stms_cs_zip.champsim");
    const std::string zipped = plain + ".gz";
    {
        Trace trace;
        trace.perCore.resize(1);
        for (int i = 1; i <= 50; ++i) {
            trace.perCore[0].push_back(
                rec(static_cast<Addr>(i) << 12,
                    static_cast<std::uint16_t>(i % 5),
                    static_cast<std::uint8_t>(i % 2 ? 0
                                                    : TraceRecord::kWrite)));
        }
        ASSERT_EQ(trace_io::writeChampSim(trace, plain).size(), 1u);
    }
    std::remove(zipped.c_str());
    ASSERT_EQ(std::system(("gzip -k " + plain).c_str()), 0);

    std::string error;
    auto direct =
        trace_io::ChampSimTraceReader::open({plain}, error);
    ASSERT_NE(direct, nullptr) << error;
    auto piped =
        trace_io::ChampSimTraceReader::open({zipped}, error);
    ASSERT_NE(piped, nullptr) << error;

    const std::vector<TraceRecord> a = readLane(*direct, 0);
    const std::vector<TraceRecord> b = readLane(*piped, 0);
    ASSERT_EQ(a.size(), 50u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].think, b[i].think);
        EXPECT_EQ(a[i].flags, b[i].flags);
    }
    std::remove(plain.c_str());
    std::remove(zipped.c_str());
}

TEST(TraceFormat, DetectionAndSpecParsing)
{
    std::string error;
    EXPECT_EQ(trace_io::detectFormat(dataPath("golden.stms"), error),
              trace_io::TraceFormat::Native);
    EXPECT_EQ(trace_io::detectFormat(dataPath("golden.champsim"),
                                     error),
              trace_io::TraceFormat::ChampSim);
    EXPECT_EQ(trace_io::detectFormat("whatever.xz", error),
              trace_io::TraceFormat::ChampSim);

    trace_io::TraceSpec spec;
    ASSERT_TRUE(
        trace_io::parseTraceSpec("t.bin,format=champsim", spec, error));
    EXPECT_EQ(spec.path, "t.bin");
    EXPECT_EQ(spec.format, trace_io::TraceFormat::ChampSim);
    EXPECT_FALSE(
        trace_io::parseTraceSpec("t.bin,format=elf", spec, error));
    EXPECT_FALSE(trace_io::parseTraceSpec("", spec, error));

    trace_io::IngestSpec ingest;
    ASSERT_TRUE(trace_io::parseIngestSpec(
        "a.champsim;b.champsim,format=champsim", 128, ingest, error));
    ASSERT_EQ(ingest.inputs.size(), 2u);
    EXPECT_EQ(ingest.inputs[1].path, "b.champsim");
    EXPECT_EQ(ingest.chunkRecords, 128u);
    EXPECT_FALSE(trace_io::parseIngestSpec("", 128, ingest, error));
    EXPECT_FALSE(
        trace_io::parseIngestSpec("a.stms", 0, ingest, error));
}

TEST(TraceFormat, OpenSourceRejectsMixedFormatsAndMultiNative)
{
    std::string error;
    trace_io::IngestSpec mixed;
    mixed.inputs.push_back(
        {dataPath("golden.stms"), trace_io::TraceFormat::Native});
    mixed.inputs.push_back({dataPath("golden.champsim"),
                            trace_io::TraceFormat::ChampSim});
    EXPECT_EQ(trace_io::openSource(mixed, error), nullptr);

    trace_io::IngestSpec twoNative;
    twoNative.inputs.assign(
        2, {dataPath("golden.stms"), trace_io::TraceFormat::Native});
    EXPECT_EQ(trace_io::openSource(twoNative, error), nullptr);
    EXPECT_NE(error.find("exactly one"), std::string::npos);
}

} // namespace
} // namespace stms
