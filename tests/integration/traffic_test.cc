/** @file Integration tests of meta-data traffic properties. */

#include <gtest/gtest.h>

#include "core/stms.hh"
#include "prefetch/stride.hh"
#include "sim/system.hh"
#include "workload/workloads.hh"

namespace stms
{
namespace
{

struct TrafficRun
{
    SimResult result;
    StmsStats stms;
};

TrafficRun
run(const Trace &trace, const StmsConfig &stms_config,
    bool functional = true)
{
    SimConfig config;
    config.warmupRecords = trace.totalRecords() / 4;
    config.memory.mem.functional = functional;
    CmpSystem system(config, trace);
    StridePrefetcher stride;
    system.addPrefetcher(&stride);
    StmsPrefetcher stms(stms_config);
    system.addPrefetcher(&stms);
    TrafficRun out;
    out.result = system.run();
    out.stms = stms.stats();
    return out;
}

Trace
makeTrace(const char *name, std::uint64_t records = 96 * 1024)
{
    return WorkloadGenerator(makeWorkload(name, records)).generate();
}

TEST(Traffic, UpdateBytesProportionalToSampling)
{
    Trace trace = makeTrace("oltp-db2");
    StmsConfig full;
    full.samplingProbability = 1.0;
    StmsConfig eighth;
    eighth.samplingProbability = 0.125;
    TrafficRun at_full = run(trace, full);
    TrafficRun at_eighth = run(trace, eighth);

    const double full_update = static_cast<double>(
        at_full.result.traffic.bytesFor(TrafficClass::MetaUpdate));
    const double eighth_update = static_cast<double>(
        at_eighth.result.traffic.bytesFor(TrafficClass::MetaUpdate));
    ASSERT_GT(full_update, 0.0);
    // Paper: update bandwidth directly proportional to p (Sec. 4.4).
    EXPECT_NEAR(eighth_update / full_update, 0.125, 0.07);
}

TEST(Traffic, RecordWritesAreBlockPacked)
{
    Trace trace = makeTrace("web-apache");
    StmsConfig config;
    config.useEndMarks = false;  // Isolate append traffic.
    TrafficRun out = run(trace, config);
    const std::uint64_t appends = out.stms.logged;
    const std::uint64_t writes =
        out.result.traffic.bytesFor(TrafficClass::MetaRecord) /
        kBlockBytes;
    // One block write per 12 appends (Sec. 5.5), modulo rounding.
    EXPECT_NEAR(static_cast<double>(writes),
                static_cast<double>(appends) / 12.0,
                static_cast<double>(appends) * 0.01 + 8);
}

TEST(Traffic, IdealModeHasZeroMetaBytes)
{
    Trace trace = makeTrace("oltp-db2");
    TrafficRun out = run(trace, makeIdealTmsConfig());
    EXPECT_EQ(out.result.traffic.bytesFor(TrafficClass::MetaLookup),
              0u);
    EXPECT_EQ(out.result.traffic.bytesFor(TrafficClass::MetaUpdate),
              0u);
    EXPECT_EQ(out.result.traffic.bytesFor(TrafficClass::MetaRecord),
              0u);
    // Data prefetches still move blocks.
    EXPECT_GT(out.result.traffic.bytesFor(TrafficClass::Prefetch), 0u);
}

TEST(Traffic, LookupTrafficScalesWithMisses)
{
    Trace trace = makeTrace("oltp-db2");
    StmsConfig config;
    TrafficRun out = run(trace, config);
    const std::uint64_t lookup_blocks =
        out.result.traffic.bytesFor(TrafficClass::MetaLookup) /
        kBlockBytes;
    // At least one block per performed lookup that missed the bucket
    // buffer; bounded by lookups + history fetches.
    EXPECT_GT(lookup_blocks, out.stms.lookups / 2);
    EXPECT_LT(lookup_blocks,
              out.stms.lookups + out.stms.followed / 4 + 1000);
}

TEST(Traffic, BucketBufferAbsorbsSomeUpdateReads)
{
    Trace trace = makeTrace("oltp-db2");
    StmsConfig with_buffer;
    with_buffer.bucketBufferBuckets = 4096;  // Generous.
    StmsConfig tiny_buffer;
    tiny_buffer.bucketBufferBuckets = 1;
    TrafficRun buffered = run(trace, with_buffer);
    TrafficRun unbuffered = run(trace, tiny_buffer);
    EXPECT_LT(
        buffered.result.traffic.bytesFor(TrafficClass::MetaUpdate),
        unbuffered.result.traffic.bytesFor(TrafficClass::MetaUpdate));
}

TEST(Traffic, OverheadPerDataByteSaneAtDefaultSampling)
{
    Trace trace = makeTrace("web-apache");
    StmsConfig config;  // 12.5%.
    TrafficRun out = run(trace, config);
    EXPECT_GT(out.result.overheadPerDataByte, 0.0);
    EXPECT_LT(out.result.overheadPerDataByte, 4.0);
}

TEST(Traffic, DemandPriorityUnaffectedByMetaFlood)
{
    // With timing on, a demand-only run and a run with heavy meta
    // traffic must both finish; demand IPC should not collapse.
    Trace trace = makeTrace("oltp-db2", 48 * 1024);
    SimConfig config;
    config.warmupRecords = trace.totalRecords() / 4;
    CmpSystem base_system(config, trace);
    StridePrefetcher stride1;
    base_system.addPrefetcher(&stride1);
    SimResult base = base_system.run();

    CmpSystem heavy_system(config, trace);
    StridePrefetcher stride2;
    heavy_system.addPrefetcher(&stride2);
    StmsConfig heavy;
    heavy.samplingProbability = 1.0;  // Max meta traffic.
    StmsPrefetcher stms(heavy);
    heavy_system.addPrefetcher(&stms);
    SimResult with_meta = heavy_system.run();

    EXPECT_GT(with_meta.ipc, base.ipc * 0.8)
        << "low-priority meta traffic must not crush demand IPC";
}

} // namespace
} // namespace stms
