/** @file Integration tests of coverage properties across the suite. */

#include <gtest/gtest.h>

#include "core/stms.hh"
#include "prefetch/stride.hh"
#include "sim/system.hh"
#include "workload/workloads.hh"

namespace stms
{
namespace
{

double
coverageOf(const Trace &trace, const StmsConfig &stms_config)
{
    SimConfig config;
    config.warmupRecords = trace.totalRecords() / 4;
    config.memory.mem.functional = true;
    config.memory.l1Latency = 0;
    config.memory.l2Latency = 0;
    config.memory.prefetchBufLatency = 0;
    CmpSystem system(config, trace);
    StridePrefetcher stride;
    system.addPrefetcher(&stride);
    StmsPrefetcher stms(stms_config);
    system.addPrefetcher(&stms);
    SimResult result = system.run();
    const auto &pf = result.prefetchers.at(1);
    const double covered = static_cast<double>(pf.useful + pf.partial);
    const double denom =
        covered + static_cast<double>(result.mem.offchipReads);
    return denom > 0 ? covered / denom : 0.0;
}

Trace
makeTrace(const char *name, std::uint64_t records = 96 * 1024)
{
    return WorkloadGenerator(makeWorkload(name, records)).generate();
}

TEST(Coverage, ScientificBeatsCommercialBeatsDss)
{
    const StmsConfig ideal = makeIdealTmsConfig();
    const double sci = coverageOf(makeTrace("sci-ocean", 128 * 1024),
                                  ideal);
    const double oltp =
        coverageOf(makeTrace("oltp-db2", 160 * 1024), ideal);
    const double dss = coverageOf(makeTrace("dss-db2"), ideal);
    EXPECT_GT(sci, 0.6);
    EXPECT_GT(oltp, 0.25);
    EXPECT_GT(sci, oltp);
    EXPECT_GT(oltp, dss);
    EXPECT_LT(dss, 0.35);
}

TEST(Coverage, GrowsWithHistorySize)
{
    Trace trace = makeTrace("web-apache");
    double previous = -1.0;
    for (std::uint64_t entries :
         {8ULL << 10, 64ULL << 10, 512ULL << 10}) {
        StmsConfig config = makeIdealTmsConfig();
        config.historyEntriesPerCore = entries;
        const double coverage = coverageOf(trace, config);
        EXPECT_GE(coverage, previous - 0.02)
            << "coverage must not fall as history grows";
        previous = coverage;
    }
}

TEST(Coverage, ScientificBimodalInHistorySize)
{
    Trace trace = makeTrace("sci-ocean", 128 * 1024);
    StmsConfig small = makeIdealTmsConfig();
    small.historyEntriesPerCore = 4096;  // << iteration length.
    StmsConfig large = makeIdealTmsConfig();
    large.historyEntriesPerCore = 256 * 1024;  // Holds iterations.
    const double low = coverageOf(trace, small);
    const double high = coverageOf(trace, large);
    EXPECT_LT(low, 0.25);
    EXPECT_GT(high, 0.6);
}

TEST(Coverage, FallsOnlySlowlyWithSampling)
{
    Trace trace = makeTrace("oltp-db2", 128 * 1024);
    StmsConfig full;
    full.samplingProbability = 1.0;
    StmsConfig eighth;
    eighth.samplingProbability = 0.125;
    const double at_full = coverageOf(trace, full);
    const double at_eighth = coverageOf(trace, eighth);
    // Paper: small loss; we require retaining >= 2/3 of coverage
    // while cutting update traffic 8x.
    EXPECT_GT(at_eighth, at_full * 0.66);
    EXPECT_GT(at_full, 0.3);
}

TEST(Coverage, DepthRestrictionLosesCoverage)
{
    Trace trace = makeTrace("web-zeus");
    StmsConfig unbounded = makeIdealTmsConfig();
    StmsConfig shallow = makeIdealTmsConfig();
    shallow.maxStreamDepth = 3;
    const double full = coverageOf(trace, unbounded);
    const double capped = coverageOf(trace, shallow);
    EXPECT_LT(capped, full);
    EXPECT_GT(full - capped, 0.05)
        << "fixed depth 3 should cost real coverage (Fig. 6 right)";
}

TEST(Coverage, EndMarksReduceErroneousPrefetches)
{
    Trace trace = makeTrace("oltp-db2");
    auto erroneous = [&](bool marks) {
        SimConfig config;
        config.warmupRecords = trace.totalRecords() / 4;
        config.memory.mem.functional = true;
        CmpSystem system(config, trace);
        StridePrefetcher stride;
        system.addPrefetcher(&stride);
        StmsConfig sc = makeIdealTmsConfig();
        sc.useEndMarks = marks;
        StmsPrefetcher stms(sc);
        system.addPrefetcher(&stms);
        SimResult result = system.run();
        return result.prefetchers.at(1).erroneous;
    };
    EXPECT_LT(erroneous(true), erroneous(false));
}

TEST(Coverage, SharedIndexEnablesCrossCoreStreams)
{
    // Build a trace where core 1 replays core 0's sequence; only a
    // shared index table can cover those misses from core 0's log.
    Trace trace;
    trace.name = "cross-core";
    trace.perCore.resize(2);
    Rng rng(404);
    std::vector<Addr> body;
    for (int i = 0; i < 4000; ++i)
        body.push_back(blockAddress(0x500000 + rng.below(1u << 20)));
    auto pad = [&](CoreId c, int n) {
        for (int i = 0; i < n; ++i) {
            trace.perCore[c].push_back(TraceRecord{
                blockAddress((0x900000ULL << c) + rng.below(1u << 22)),
                40, 0});
        }
    };
    for (Addr a : body)
        trace.perCore[0].push_back(TraceRecord{a, 40, 0});
    pad(0, 8000);
    pad(1, 6000);  // Keep core 1 busy while core 0 records.
    for (Addr a : body)
        trace.perCore[1].push_back(TraceRecord{a, 40, 0});

    SimConfig config;
    // Shrink the L2 so core 0's body is evicted before core 1 replays
    // it: coverage must come from the history, not cache residency.
    config.memory.l2.sizeBytes = 512 * 1024;
    CmpSystem system(config, trace);
    StmsConfig sc = makeIdealTmsConfig();
    StmsPrefetcher stms(sc);
    system.addPrefetcher(&stms);
    SimResult result = system.run();
    // Core 1's replay must be covered from core 0's history buffer.
    EXPECT_GT(result.prefetchers.at(0).useful +
                  result.prefetchers.at(0).partial,
              body.size() / 4);
}

} // namespace
} // namespace stms
