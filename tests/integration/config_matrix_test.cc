/** @file Property-style TEST_P sweeps over the STMS configuration
 *  space: invariants that must hold for EVERY configuration. */

#include <gtest/gtest.h>

#include <tuple>

#include "core/stms.hh"
#include "prefetch/stride.hh"
#include "sim/system.hh"
#include "workload/workloads.hh"

namespace stms
{
namespace
{

/** (sampling probability, stream slots, end marks enabled). */
using ConfigPoint = std::tuple<double, std::uint32_t, bool>;

class StmsConfigMatrix : public ::testing::TestWithParam<ConfigPoint>
{
  protected:
    static const Trace &
    trace()
    {
        static const Trace instance = WorkloadGenerator(
            makeWorkload("oltp-db2", 48 * 1024)).generate();
        return instance;
    }

    struct Run
    {
        SimResult result;
        StmsStats stms;
        std::uint64_t samplerOffered;
        std::uint64_t samplerTaken;
    };

    Run
    run() const
    {
        auto [p, slots, marks] = GetParam();
        SimConfig config;
        config.warmupRecords = trace().totalRecords() / 4;
        config.memory.mem.functional = true;
        CmpSystem system(config, trace());
        StridePrefetcher stride;
        system.addPrefetcher(&stride);
        StmsConfig sc;
        sc.samplingProbability = p;
        sc.streamsPerCore = slots;
        sc.useEndMarks = marks;
        StmsPrefetcher stms(sc);
        system.addPrefetcher(&stms);
        Run out;
        out.result = system.run();
        out.stms = stms.stats();
        out.samplerOffered = stms.sampler().offered();
        out.samplerTaken = stms.sampler().taken();
        return out;
    }
};

TEST_P(StmsConfigMatrix, AccountingIdentitiesHold)
{
    Run out = run();
    const auto &pf = out.result.prefetchers.at(1);
    // Everything issued is eventually useful, partial, erroneous, or
    // still resident in the prefetch buffer / in flight at the end.
    EXPECT_LE(pf.useful + pf.partial + pf.erroneous, pf.issued);
    // Lookup accounting: hits cannot exceed lookups; started streams
    // cannot exceed hits (stale pointers and duplicates drop some).
    EXPECT_LE(out.stms.lookupHits, out.stms.lookups);
    EXPECT_LE(out.stms.streamsStarted, out.stms.lookupHits);
    // Streams end at most as often as they start (plus active ones).
    EXPECT_LE(out.stms.streamsEnded, out.stms.streamsStarted);
    // Consumption is a subset of followed entries.
    EXPECT_LE(out.stms.consumed, out.stms.followed);
}

TEST_P(StmsConfigMatrix, SamplerObeysProbability)
{
    Run out = run();
    auto [p, slots, marks] = GetParam();
    (void)slots;
    (void)marks;
    if (out.samplerOffered > 10000) {
        const double observed =
            static_cast<double>(out.samplerTaken) /
            static_cast<double>(out.samplerOffered);
        EXPECT_NEAR(observed, p, 0.02);
    }
}

TEST_P(StmsConfigMatrix, TrafficOnlyFromEnabledSources)
{
    Run out = run();
    auto [p, slots, marks] = GetParam();
    (void)slots;
    const auto &traffic = out.result.traffic;
    if (p == 0.0) {
        // No sampled updates -> no update traffic at all.
        EXPECT_EQ(traffic.bytesFor(TrafficClass::MetaUpdate), 0u);
    } else {
        EXPECT_GT(traffic.bytesFor(TrafficClass::MetaUpdate), 0u);
    }
    if (!marks) {
        EXPECT_EQ(out.stms.endMarksWritten, 0u);
        EXPECT_EQ(out.stms.pauses, 0u);
    }
    // Record traffic is bounded by logged/12 (+ end marks).
    const std::uint64_t record_blocks =
        traffic.bytesFor(TrafficClass::MetaRecord) / kBlockBytes;
    EXPECT_LE(record_blocks,
              out.stms.logged / 12 + out.stms.endMarksWritten + 1);
}

TEST_P(StmsConfigMatrix, DeterministicRepeatability)
{
    Run a = run();
    Run b = run();
    EXPECT_EQ(a.result.mem.offchipReads, b.result.mem.offchipReads);
    EXPECT_EQ(a.result.traffic.totalBytes(),
              b.result.traffic.totalBytes());
    EXPECT_EQ(a.stms.consumed, b.stms.consumed);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StmsConfigMatrix,
    ::testing::Combine(::testing::Values(0.0, 0.125, 1.0),
                       ::testing::Values(1u, 4u),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<ConfigPoint> &point) {
        const double p = std::get<0>(point.param);
        const std::uint32_t slots = std::get<1>(point.param);
        const bool marks = std::get<2>(point.param);
        std::string name = "p";
        name += p == 0.0 ? "0" : (p == 1.0 ? "100" : "12");
        name += "_slots" + std::to_string(slots);
        name += marks ? "_marks" : "_nomarks";
        return name;
    });

} // namespace
} // namespace stms
