/** @file End-to-end integration tests: full CMP system + workloads. */

#include <gtest/gtest.h>

#include "core/stms.hh"
#include "prefetch/stride.hh"
#include "sim/system.hh"
#include "workload/workloads.hh"

namespace stms
{
namespace
{

struct Summary
{
    SimResult result;
    double stmsCoverage = 0.0;
};

Summary
runWorkload(const Trace &trace, const StmsConfig *stms_config,
            bool functional = false)
{
    SimConfig config;
    config.warmupRecords = trace.totalRecords() / 4;
    if (functional) {
        config.memory.mem.functional = true;
        config.memory.l1Latency = 0;
        config.memory.l2Latency = 0;
        config.memory.prefetchBufLatency = 0;
    }
    CmpSystem system(config, trace);
    StridePrefetcher stride;
    system.addPrefetcher(&stride);
    std::optional<StmsPrefetcher> stms;
    if (stms_config) {
        stms.emplace(*stms_config);
        system.addPrefetcher(&*stms);
    }
    Summary summary;
    summary.result = system.run();
    if (stms_config) {
        const auto &pf = summary.result.prefetchers.at(1);
        const double covered =
            static_cast<double>(pf.useful + pf.partial);
        const double denom =
            covered +
            static_cast<double>(summary.result.mem.offchipReads);
        summary.stmsCoverage = denom > 0 ? covered / denom : 0.0;
    }
    return summary;
}

Trace
makeTrace(const char *name, std::uint64_t records = 96 * 1024)
{
    return WorkloadGenerator(makeWorkload(name, records)).generate();
}

TEST(EndToEnd, AllCoresRetireEveryRecord)
{
    Trace trace = makeTrace("oltp-db2", 32 * 1024);
    SimConfig config;
    CmpSystem system(config, trace);
    StridePrefetcher stride;
    system.addPrefetcher(&stride);
    SimResult result = system.run();
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.ipc, 0.0);
    for (CoreId c = 0; c < trace.numCores(); ++c)
        EXPECT_TRUE(system.core(c).done());
}

TEST(EndToEnd, DeterministicAcrossRuns)
{
    Trace trace = makeTrace("web-apache", 32 * 1024);
    StmsConfig config;
    Summary a = runWorkload(trace, &config);
    Summary b = runWorkload(trace, &config);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.mem.offchipReads, b.result.mem.offchipReads);
    EXPECT_EQ(a.result.traffic.totalBytes(),
              b.result.traffic.totalBytes());
    EXPECT_DOUBLE_EQ(a.stmsCoverage, b.stmsCoverage);
}

TEST(EndToEnd, StmsImprovesIpcOnStreamingWorkload)
{
    Trace trace = makeTrace("sci-ocean", 128 * 1024);
    Summary base = runWorkload(trace, nullptr);
    StmsConfig config;
    Summary with = runWorkload(trace, &config);
    EXPECT_GT(with.result.ipc, base.result.ipc);
    EXPECT_GT(with.stmsCoverage, 0.3);
}

TEST(EndToEnd, IdealAtLeastMatchesOffchipCoverage)
{
    Trace trace = makeTrace("oltp-db2", 160 * 1024);
    StmsConfig practical;
    StmsConfig ideal = makeIdealTmsConfig();
    Summary p = runWorkload(trace, &practical, /*functional=*/true);
    Summary i = runWorkload(trace, &ideal, /*functional=*/true);
    EXPECT_GE(i.stmsCoverage, p.stmsCoverage * 0.95);
    EXPECT_GT(i.stmsCoverage, 0.2);
}

TEST(EndToEnd, WarmupBarrierResetsStats)
{
    Trace trace = makeTrace("oltp-db2", 32 * 1024);
    SimConfig with_warmup;
    with_warmup.warmupRecords = trace.totalRecords() / 2;
    CmpSystem system(with_warmup, trace);
    StridePrefetcher stride;
    system.addPrefetcher(&stride);
    SimResult result = system.run();
    // Measured accesses must be roughly the post-warmup half.
    EXPECT_LT(result.mem.accesses, trace.totalRecords() * 3 / 4);
    EXPECT_GT(result.mem.accesses, trace.totalRecords() / 4);
}

TEST(EndToEnd, StrideCoversScansStmsCoversStreams)
{
    Trace trace = makeTrace("dss-db2");
    StmsConfig config;
    Summary summary = runWorkload(trace, &config, /*functional=*/true);
    const auto &stride_stats = summary.result.prefetchers.at(0);
    // The DSS scan component belongs to the stride prefetcher.
    EXPECT_GT(stride_stats.useful, 0u);
    // Temporal streaming finds little (visit-once data), Sec. 5.2.
    EXPECT_LT(summary.stmsCoverage, 0.35);
}

TEST(EndToEnd, MemoryBandwidthNeverOversubscribed)
{
    Trace trace = makeTrace("sci-em3d", 64 * 1024);
    StmsConfig config;
    Summary summary = runWorkload(trace, &config);
    EXPECT_LE(summary.result.memUtilization, 1.0 + 1e-9);
}

} // namespace
} // namespace stms
