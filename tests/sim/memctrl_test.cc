/** @file Unit tests for the memory-controller timing model. */

#include <gtest/gtest.h>

#include "sim/memctrl.hh"

namespace stms
{
namespace
{

MemCtrlConfig
tableOneConfig()
{
    return MemCtrlConfig{};  // 180-cycle access, 9 cycles/transfer.
}

TEST(MemCtrl, SingleReadLatency)
{
    EventQueue events;
    MemController mem(events, tableOneConfig());
    Cycle done = 0;
    events.schedule(0, [&]() {
        mem.request(TrafficClass::DemandRead, Priority::High, 1,
                    [&](Cycle tick) { done = tick; });
    });
    events.run();
    EXPECT_EQ(done, 189u);  // access latency + one transfer.
}

TEST(MemCtrl, BandwidthSerializesTransfers)
{
    EventQueue events;
    MemController mem(events, tableOneConfig());
    std::vector<Cycle> done;
    events.schedule(0, [&]() {
        for (int i = 0; i < 4; ++i) {
            mem.request(TrafficClass::DemandRead, Priority::High, 1,
                        [&](Cycle tick) { done.push_back(tick); });
        }
    });
    events.run();
    ASSERT_EQ(done.size(), 4u);
    // Grants pipeline behind each other by transferCycles.
    EXPECT_EQ(done[0], 189u);
    EXPECT_EQ(done[1], 198u);
    EXPECT_EQ(done[2], 207u);
    EXPECT_EQ(done[3], 216u);
}

TEST(MemCtrl, HighPriorityBeatsQueuedLowPriority)
{
    EventQueue events;
    MemController mem(events, tableOneConfig());
    std::vector<int> completion_order;
    events.schedule(0, [&]() {
        // One request occupies the channel; then a low and a high
        // arrive while it is busy: the high must be granted first.
        mem.request(TrafficClass::DemandRead, Priority::High, 1,
                    nullptr);
        mem.request(TrafficClass::MetaLookup, Priority::Low, 1,
                    [&](Cycle) { completion_order.push_back(2); });
        mem.request(TrafficClass::DemandRead, Priority::High, 1,
                    [&](Cycle) { completion_order.push_back(1); });
    });
    events.run();
    ASSERT_EQ(completion_order.size(), 2u);
    EXPECT_EQ(completion_order[0], 1);
    EXPECT_EQ(completion_order[1], 2);
}

TEST(MemCtrl, MultiBlockRequestOccupiesLonger)
{
    EventQueue events;
    MemController mem(events, tableOneConfig());
    Cycle first = 0, second = 0;
    events.schedule(0, [&]() {
        mem.request(TrafficClass::MetaLookup, Priority::Low, 4,
                    [&](Cycle tick) { first = tick; });
        mem.request(TrafficClass::DemandRead, Priority::High, 1,
                    [&](Cycle tick) { second = tick; });
    });
    events.run();
    EXPECT_EQ(first, 180u + 4 * 9u);
    // The demand waits for the 36-cycle transfer, then 180 + 9.
    EXPECT_EQ(second, 36u + 189u);
}

TEST(MemCtrl, FunctionalModeZeroLatencyButCounted)
{
    EventQueue events;
    MemCtrlConfig config;
    config.functional = true;
    MemController mem(events, config);
    bool called = false;
    mem.request(TrafficClass::Prefetch, Priority::Low, 2,
                [&](Cycle tick) {
                    called = true;
                    EXPECT_EQ(tick, 0u);
                });
    EXPECT_TRUE(called);
    EXPECT_EQ(mem.stats().bytesFor(TrafficClass::Prefetch),
              2 * kBlockBytes);
    EXPECT_EQ(mem.stats().busyCycles, 0u);
}

TEST(MemCtrl, TrafficAccounting)
{
    EventQueue events;
    MemController mem(events, tableOneConfig());
    events.schedule(0, [&]() {
        mem.request(TrafficClass::DemandRead, Priority::High, 1,
                    nullptr);
        mem.request(TrafficClass::DemandWriteback, Priority::Low, 1,
                    nullptr);
        mem.request(TrafficClass::MetaUpdate, Priority::Low, 3,
                    nullptr);
    });
    events.run();
    const auto &stats = mem.stats();
    EXPECT_EQ(stats.totalBytes(), 5 * kBlockBytes);
    EXPECT_EQ(stats.overheadBytes(), 3 * kBlockBytes);
    EXPECT_EQ(stats.highPrioRequests, 1u);
    EXPECT_EQ(stats.lowPrioRequests, 2u);
    EXPECT_EQ(stats.busyCycles, 5 * 9u);
}

TEST(MemCtrl, UtilizationFromBusyCycles)
{
    EventQueue events;
    MemController mem(events, tableOneConfig());
    events.schedule(0, [&]() {
        mem.request(TrafficClass::DemandRead, Priority::High, 1,
                    nullptr);
    });
    events.run();
    EXPECT_DOUBLE_EQ(mem.utilization(90), 0.1);
    EXPECT_DOUBLE_EQ(mem.utilization(0), 0.0);
}

TEST(MemCtrl, WritesMayOmitCallback)
{
    EventQueue events;
    MemController mem(events, tableOneConfig());
    events.schedule(0, [&]() {
        mem.request(TrafficClass::DemandWriteback, Priority::Low, 1,
                    nullptr);
    });
    events.run();  // Must not crash; channel must free.
    EXPECT_EQ(mem.stats().requests[static_cast<std::size_t>(
                  TrafficClass::DemandWriteback)],
              1u);
}

} // namespace
} // namespace stms
