/** @file Unit tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "sim/cache.hh"

namespace stms
{
namespace
{

CacheConfig
smallCache(std::uint32_t ways = 2, ReplPolicy policy = ReplPolicy::Lru)
{
    // 4KB, 64B blocks -> 64 lines.
    return CacheConfig{"test", 4 * 1024, ways, policy, 5};
}

TEST(Cache, MissThenFillThenHit)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.access(0x1000, false));
    cache.fill(0x1000);
    EXPECT_TRUE(cache.access(0x1000, false));
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, SubBlockAddressesShareALine)
{
    Cache cache(smallCache());
    cache.fill(0x1000);
    EXPECT_TRUE(cache.access(0x1004, false));
    EXPECT_TRUE(cache.access(0x103F, true));
    EXPECT_TRUE(cache.contains(0x1010));
}

TEST(Cache, EvictionReportsVictim)
{
    Cache cache(smallCache(/*ways=*/2));
    // Same set: stride = sets * blockSize = 32 * 64.
    const Addr stride = cache.numSets() * kBlockBytes;
    cache.fill(0x0);
    cache.fill(stride);
    Eviction evicted = cache.fill(2 * stride);
    EXPECT_TRUE(evicted.valid);
    EXPECT_EQ(evicted.blockAddr, 0u);  // LRU victim.
    EXPECT_FALSE(evicted.dirty);
}

TEST(Cache, DirtyEvictionFlagged)
{
    Cache cache(smallCache(2));
    const Addr stride = cache.numSets() * kBlockBytes;
    cache.fill(0x0, /*dirty=*/true);
    cache.fill(stride);
    Eviction evicted = cache.fill(2 * stride);
    EXPECT_TRUE(evicted.valid);
    EXPECT_TRUE(evicted.dirty);
    EXPECT_EQ(cache.stats().dirtyEvictions, 1u);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache cache(smallCache(2));
    const Addr stride = cache.numSets() * kBlockBytes;
    cache.fill(0x0);
    EXPECT_TRUE(cache.access(0x0, true));  // Write hit.
    cache.fill(stride);
    Eviction evicted = cache.fill(2 * stride);
    EXPECT_TRUE(evicted.dirty);
}

TEST(Cache, LruPreservedByHits)
{
    Cache cache(smallCache(2));
    const Addr stride = cache.numSets() * kBlockBytes;
    cache.fill(0x0);
    cache.fill(stride);
    EXPECT_TRUE(cache.access(0x0, false));  // Refresh 0x0.
    Eviction evicted = cache.fill(2 * stride);
    EXPECT_EQ(evicted.blockAddr, stride);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache cache(smallCache());
    cache.fill(0x2000);
    EXPECT_TRUE(cache.invalidate(0x2000));
    EXPECT_FALSE(cache.contains(0x2000));
    EXPECT_FALSE(cache.invalidate(0x2000));
    EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(Cache, RefillOfPresentBlockKeepsOccupancy)
{
    Cache cache(smallCache());
    cache.fill(0x40);
    cache.fill(0x40, true);
    EXPECT_EQ(cache.occupancy(), 1u);
    // The refill's dirtiness sticks.
    const Addr stride = cache.numSets() * kBlockBytes;
    cache.fill(0x40 + stride);
    Eviction evicted = cache.fill(0x40 + 2 * stride);
    EXPECT_TRUE(evicted.dirty);
}

TEST(Cache, MarkDirtyOnPresentLine)
{
    Cache cache(smallCache(2));
    const Addr stride = cache.numSets() * kBlockBytes;
    cache.fill(0x0);
    cache.markDirty(0x0);
    cache.fill(stride);
    EXPECT_TRUE(cache.fill(2 * stride).dirty);
}

TEST(Cache, OccupancyTracksFills)
{
    Cache cache(smallCache());
    EXPECT_EQ(cache.occupancy(), 0u);
    for (Addr block = 0; block < 10; ++block)
        cache.fill(blockAddress(block * 3));
    EXPECT_EQ(cache.occupancy(), 10u);
}

TEST(Cache, GeometryAccessors)
{
    Cache cache(smallCache(2));
    EXPECT_EQ(cache.sizeBytes(), 4096u);
    EXPECT_EQ(cache.numWays(), 2u);
    EXPECT_EQ(cache.numSets() * cache.numWays() * kBlockBytes,
              cache.sizeBytes());
}

class CachePolicies : public ::testing::TestWithParam<ReplPolicy>
{
};

TEST_P(CachePolicies, FullSetNeverExceedsWays)
{
    Cache cache(smallCache(4, GetParam()));
    // Hammer one set with many distinct blocks.
    const Addr stride = cache.numSets() * kBlockBytes;
    for (Addr i = 0; i < 64; ++i)
        cache.fill(i * stride);
    EXPECT_LE(cache.occupancy(), 4u);
}

TEST_P(CachePolicies, WorkingSetWithinCapacityAllHits)
{
    Cache cache(smallCache(4, GetParam()));
    for (Addr block = 0; block < 32; ++block)
        cache.fill(blockAddress(block));
    cache.resetStats();
    for (int round = 0; round < 4; ++round)
        for (Addr block = 0; block < 32; ++block)
            EXPECT_TRUE(cache.access(blockAddress(block), false));
    EXPECT_EQ(cache.stats().misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, CachePolicies,
                         ::testing::Values(ReplPolicy::Lru,
                                           ReplPolicy::Random,
                                           ReplPolicy::TreePlru));

} // namespace
} // namespace stms
