/** @file Unit tests for the CMP memory hierarchy. */

#include <gtest/gtest.h>

#include "sim/memory_system.hh"

namespace stms
{
namespace
{

/** Minimal observable prefetcher for driving the hierarchy. */
class ProbePf : public Prefetcher
{
  public:
    const std::string &name() const override { return name_; }
    void onOffchipRead(CoreId, Addr block) override
    {
        misses.push_back(block);
    }
    void onPrefetchUsed(CoreId, Addr block, bool partial) override
    {
        (partial ? partials : useds).push_back(block);
    }
    void onPrefetchUnused(CoreId, Addr block) override
    {
        unused.push_back(block);
    }
    void onForeignCovered(CoreId, Addr block) override
    {
        foreign.push_back(block);
    }

    std::vector<Addr> misses, useds, partials, unused, foreign;

  private:
    std::string name_ = "probe";
};

struct Fixture
{
    Fixture()
    {
        config.numCores = 2;
        config.l1.sizeBytes = 4 * 1024;
        config.l2.sizeBytes = 64 * 1024;
        memory = std::make_unique<MemorySystem>(events, config);
        memory->addPrefetcher(&pf);
    }

    EventQueue events;
    MemorySystemConfig config;
    std::unique_ptr<MemorySystem> memory;
    ProbePf pf;
};

TEST(MemorySystem, ColdReadGoesOffchipAndFillsCaches)
{
    Fixture f;
    AccessOutcome outcome{};
    Cycle done = 0;
    f.events.schedule(0, [&]() {
        f.memory->demandAccess(0, 0x10000, false,
                               [&](Cycle tick, AccessOutcome o) {
                                   done = tick;
                                   outcome = o;
                               });
    });
    f.events.run();
    EXPECT_EQ(outcome, AccessOutcome::Mem);
    EXPECT_EQ(done, 189u);
    EXPECT_EQ(f.memory->stats().offchipReads, 1u);
    ASSERT_EQ(f.pf.misses.size(), 1u);
    EXPECT_EQ(f.pf.misses[0], 0x10000u);
    // Subsequent access is an L1 hit via the fast path.
    EXPECT_TRUE(f.memory->tryL1(0, 0x10000, false));
}

TEST(MemorySystem, L2HitAfterOtherCoreFetched)
{
    Fixture f;
    f.events.schedule(0, [&]() {
        f.memory->demandAccess(0, 0x20000, false, nullptr);
    });
    f.events.run();
    AccessOutcome outcome{};
    f.events.schedule(0, [&]() {
        f.memory->demandAccess(1, 0x20000, false,
                               [&](Cycle, AccessOutcome o) {
                                   outcome = o;
                               });
    });
    f.events.run();
    EXPECT_EQ(outcome, AccessOutcome::L2Hit);
    EXPECT_EQ(f.memory->stats().l2Hits, 1u);
}

TEST(MemorySystem, PrefetchThenDemandIsFullyCovered)
{
    Fixture f;
    f.events.schedule(0, [&]() {
        EXPECT_EQ(f.memory->issuePrefetch(f.pf, 0, 0x30000),
                  IssueResult::Issued);
    });
    f.events.run();  // Prefetch completes into the buffer.
    AccessOutcome outcome{};
    f.events.schedule(1000, [&]() {
        f.memory->demandAccess(0, 0x30000, false,
                               [&](Cycle, AccessOutcome o) {
                                   outcome = o;
                               });
    });
    f.events.run();
    EXPECT_EQ(outcome, AccessOutcome::PrefetchHit);
    EXPECT_EQ(f.memory->stats().prefetchHits, 1u);
    EXPECT_EQ(f.memory->prefetcherStats(0).useful, 1u);
    ASSERT_EQ(f.pf.useds.size(), 1u);
    // The block was installed into L1/L2 on use.
    EXPECT_TRUE(f.memory->l2().contains(0x30000));
}

TEST(MemorySystem, DemandMergingWithInflightPrefetchIsPartial)
{
    Fixture f;
    AccessOutcome outcome{};
    f.events.schedule(0, [&]() {
        f.memory->issuePrefetch(f.pf, 0, 0x40000);
    });
    f.events.schedule(50, [&]() {
        f.memory->demandAccess(0, 0x40000, false,
                               [&](Cycle, AccessOutcome o) {
                                   outcome = o;
                               });
    });
    f.events.run();
    EXPECT_EQ(outcome, AccessOutcome::MemPartial);
    EXPECT_EQ(f.memory->stats().partialMisses, 1u);
    EXPECT_EQ(f.memory->prefetcherStats(0).partial, 1u);
    ASSERT_EQ(f.pf.partials.size(), 1u);
}

TEST(MemorySystem, RedundantPrefetchDropped)
{
    Fixture f;
    f.events.schedule(0, [&]() {
        f.memory->demandAccess(0, 0x50000, false, nullptr);
    });
    f.events.run();
    f.events.schedule(0, [&]() {
        EXPECT_EQ(f.memory->issuePrefetch(f.pf, 0, 0x50000),
                  IssueResult::AlreadyPresent);
    });
    f.events.run();
    EXPECT_EQ(f.memory->prefetcherStats(0).redundant, 1u);
}

TEST(MemorySystem, PrefetchInflightCapRejects)
{
    Fixture f;
    f.events.schedule(0, [&]() {
        for (std::uint32_t i = 0; i < f.config.maxPrefetchInflight; ++i) {
            EXPECT_EQ(f.memory->issuePrefetch(
                          f.pf, 0, 0x100000 + i * kBlockBytes),
                      IssueResult::Issued);
        }
        EXPECT_EQ(f.memory->issuePrefetch(f.pf, 0, 0x900000),
                  IssueResult::NoResources);
        EXPECT_EQ(f.memory->prefetchRoom(f.pf, 0), 0u);
    });
    f.events.run();
    EXPECT_EQ(f.memory->prefetcherStats(0).rejected, 1u);
}

TEST(MemorySystem, UnusedPrefetchEvictionNotifies)
{
    Fixture f;
    // Fill the 32-entry buffer, then one more to force an eviction.
    for (std::uint32_t i = 0; i <= f.config.prefetchBufferBlocks; ++i) {
        f.events.schedule(f.events.now(), [&f, i]() {
            f.memory->issuePrefetch(f.pf, 0,
                                    0x200000 + i * kBlockBytes);
        });
        f.events.run();
    }
    EXPECT_EQ(f.pf.unused.size(), 1u);
    EXPECT_EQ(f.memory->prefetcherStats(0).erroneous, 1u);
}

TEST(MemorySystem, MlpMeterTracksOverlap)
{
    MlpMeter meter;
    meter.start(0);
    meter.start(0);
    meter.finish(100);
    meter.finish(100);
    EXPECT_DOUBLE_EQ(meter.mlp(), 2.0);

    MlpMeter serial;
    serial.start(0);
    serial.finish(100);
    serial.start(100);
    serial.finish(200);
    EXPECT_DOUBLE_EQ(serial.mlp(), 1.0);
}

TEST(MemorySystem, MlpMeterResetWhileReadsOutstanding)
{
    // The warmup-boundary reset must discard accumulated area but
    // keep the in-flight count: reads issued before the boundary
    // still contribute overlap to the measured region.
    MlpMeter meter;
    meter.start(0);
    meter.start(10);
    meter.reset(20);
    EXPECT_EQ(meter.outstanding(), 2u);
    EXPECT_DOUBLE_EQ(meter.mlp(), 0.0);  // Area zeroed at boundary.
    meter.finish(30);
    meter.finish(30);
    EXPECT_EQ(meter.outstanding(), 0u);
    // Only the 10 post-reset cycles count, with both reads in flight.
    EXPECT_DOUBLE_EQ(meter.mlp(), 2.0);

    // Reset while idle must not invent busy time before the next
    // start, even when the last activity predates the reset point.
    MlpMeter idle;
    idle.start(0);
    idle.finish(50);
    idle.reset(100);
    idle.start(200);
    idle.finish(300);
    EXPECT_DOUBLE_EQ(idle.mlp(), 1.0);
}

TEST(MemorySystem, WriteMissAllocatesWithoutCallback)
{
    Fixture f;
    f.events.schedule(0, [&]() {
        f.memory->demandAccess(0, 0x60000, true, nullptr);
    });
    f.events.run();
    EXPECT_EQ(f.memory->stats().offchipWrites, 1u);
    EXPECT_TRUE(f.memory->l2().contains(0x60000));
    // Writes do not trigger streaming.
    EXPECT_TRUE(f.pf.misses.empty());
}

TEST(MemorySystem, ForeignCoverageNotifiesOtherPrefetchers)
{
    Fixture f;
    ProbePf second;
    f.memory->addPrefetcher(&second);
    f.events.schedule(0, [&]() {
        f.memory->issuePrefetch(f.pf, 0, 0x70000);
    });
    f.events.run();
    f.events.schedule(1000, [&]() {
        f.memory->demandAccess(0, 0x70000, false, nullptr);
    });
    f.events.run();
    ASSERT_EQ(f.pf.useds.size(), 1u);
    ASSERT_EQ(second.foreign.size(), 1u);
    EXPECT_EQ(second.foreign[0], 0x70000u);
}

TEST(MemorySystem, ResetStatsZeroesEverything)
{
    Fixture f;
    f.events.schedule(0, [&]() {
        f.memory->demandAccess(0, 0x80000, false, nullptr);
    });
    f.events.run();
    f.memory->resetStats();
    EXPECT_EQ(f.memory->stats().offchipReads, 0u);
    EXPECT_EQ(f.memory->stats().accesses, 0u);
    EXPECT_EQ(f.memory->memStats().totalBytes(), 0u);
}

} // namespace
} // namespace stms
