/** @file Tests of the CmpSystem harness and SimResult aggregation. */

#include <gtest/gtest.h>

#include "core/stms.hh"
#include "prefetch/stride.hh"
#include "sim/system.hh"
#include "workload/workloads.hh"

namespace stms
{
namespace
{

Trace
tinyTrace(std::uint32_t cores = 2, std::uint64_t records = 4096)
{
    WorkloadSpec spec;
    spec.name = "sys-test";
    spec.numCores = cores;
    spec.recordsPerCore = records;
    spec.seed = 321;
    spec.minReuseRecords = 256;
    spec.maxReuseRecords = 1024;
    return WorkloadGenerator(spec).generate();
}

TEST(CmpSystem, AdoptsTraceCoreCount)
{
    Trace trace = tinyTrace(3);
    SimConfig config;
    config.memory.numCores = 7;  // Overridden by the trace.
    CmpSystem system(config, trace);
    EXPECT_EQ(system.memory().numCores(), 3u);
    SimResult result = system.run();
    EXPECT_EQ(result.mlpPerCore.size(), 3u);
}

TEST(CmpSystem, InstructionAndCycleAccounting)
{
    Trace trace = tinyTrace();
    SimConfig config;
    CmpSystem system(config, trace);
    SimResult result = system.run();
    EXPECT_GT(result.instructions, trace.totalRecords());
    EXPECT_GT(result.cycles, 0u);
    EXPECT_NEAR(result.ipc,
                static_cast<double>(result.instructions) /
                    static_cast<double>(result.cycles),
                1e-9);
}

TEST(CmpSystem, PrefetcherStatsExposedPerRegistration)
{
    Trace trace = tinyTrace();
    SimConfig config;
    CmpSystem system(config, trace);
    StridePrefetcher stride;
    StmsPrefetcher stms;
    system.addPrefetcher(&stride);
    system.addPrefetcher(&stms);
    SimResult result = system.run();
    ASSERT_EQ(result.prefetchers.size(), 2u);
}

TEST(CmpSystem, OverheadZeroWithoutPrefetchers)
{
    Trace trace = tinyTrace();
    SimConfig config;
    CmpSystem system(config, trace);
    SimResult result = system.run();
    EXPECT_DOUBLE_EQ(result.overheadPerDataByte, 0.0);
    EXPECT_EQ(result.traffic.overheadBytes(), 0u);
}

TEST(CmpSystem, MaxCyclesBoundsRuntime)
{
    Trace trace = tinyTrace(1, 64 * 1024);
    SimConfig config;
    config.maxCycles = 10000;
    CmpSystem system(config, trace);
    SimResult result = system.run();  // Warns but terminates.
    EXPECT_FALSE(system.core(0).done());
}

TEST(CmpSystem, CoverageFieldsConsistent)
{
    Trace trace = tinyTrace(2, 16 * 1024);
    SimConfig config;
    CmpSystem system(config, trace);
    StridePrefetcher stride;
    system.addPrefetcher(&stride);
    StmsPrefetcher stms;
    system.addPrefetcher(&stms);
    SimResult result = system.run();
    EXPECT_GE(result.coverage, result.fullCoverage);
    EXPECT_LE(result.coverage, 1.0);
    const auto &mem = result.mem;
    EXPECT_EQ(mem.totalOffchipDemand(),
              mem.prefetchHits + mem.partialMisses + mem.offchipReads);
}

TEST(CmpSystem, WarmupLongerThanTraceStillFinishes)
{
    Trace trace = tinyTrace();
    SimConfig config;
    config.warmupRecords = trace.totalRecords() * 10;
    CmpSystem system(config, trace);
    SimResult result = system.run();
    // Never reaches the barrier: stats cover the whole run.
    EXPECT_GT(result.mem.accesses, 0u);
}

} // namespace
} // namespace stms
