/**
 * @file
 * Backend conformance suite: every memory backend (fixed, queued,
 * DRAM) must honor the MemBackend contract — callbacks fire exactly
 * once, completions within a priority class at one address are FIFO,
 * byte accounting matches request() arguments, resetStats() zeroes
 * every counter, and demand traffic beats meta-data traffic under
 * saturation. Also pins FixedLatencyBackend to MemController
 * tick-for-tick on a deterministic request script (the unit-level
 * half of the bit-identity regression).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "sim/mem_backend.hh"
#include "sim/memctrl.hh"

namespace stms
{
namespace
{

struct BackendCase
{
    const char *name;
    MemBackendKind kind;
};

/** Block @p n as a byte address (all backends decode block numbers). */
Addr
blockAddr(std::uint64_t n)
{
    return n * kBlockBytes;
}

class MemBackendConformance
    : public ::testing::TestWithParam<BackendCase>
{
  protected:
    std::unique_ptr<MemBackend>
    make(EventQueue &events, bool functional = false)
    {
        MemBackendSpec spec;
        spec.kind = GetParam().kind;
        MemCtrlConfig config;
        config.functional = functional;
        return makeMemBackend(events, spec, config);
    }
};

TEST_P(MemBackendConformance, ReportsItsOwnKind)
{
    EventQueue events;
    auto mem = make(events);
    EXPECT_STREQ(mem->kindName(), GetParam().name);
    EXPECT_GE(mem->channels(), 1u);
}

TEST_P(MemBackendConformance, CallbackFiresExactlyOnce)
{
    EventQueue events;
    auto mem = make(events);
    std::vector<int> fired(8, 0);
    events.schedule(0, [&]() {
        for (std::uint64_t i = 0; i < fired.size(); ++i) {
            // Mixed classes/priorities, distinct addresses.
            const auto cls = (i % 2) ? TrafficClass::MetaLookup
                                     : TrafficClass::DemandRead;
            const auto prio =
                (i % 2) ? Priority::Low : Priority::High;
            mem->request(cls, prio, blockAddr(i * 129), 1,
                         [&fired, i](Cycle) { ++fired[i]; });
        }
    });
    events.run();
    for (std::uint64_t i = 0; i < fired.size(); ++i)
        EXPECT_EQ(fired[i], 1) << "request " << i;
}

TEST_P(MemBackendConformance, FifoWithinPriorityClassAtOneAddress)
{
    EventQueue events;
    auto mem = make(events);
    std::vector<int> order;
    std::vector<Cycle> ticks;
    events.schedule(0, [&]() {
        for (int i = 0; i < 6; ++i) {
            mem->request(TrafficClass::MetaLookup, Priority::Low,
                         blockAddr(7), 1, [&, i](Cycle tick) {
                             order.push_back(i);
                             ticks.push_back(tick);
                         });
        }
    });
    events.run();
    ASSERT_EQ(order.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(order[i], i);
    for (std::size_t i = 1; i < ticks.size(); ++i)
        EXPECT_GE(ticks[i], ticks[i - 1]);
}

TEST_P(MemBackendConformance, ByteAccountingMatchesRequestArgs)
{
    EventQueue events;
    auto mem = make(events);
    events.schedule(0, [&]() {
        mem->request(TrafficClass::DemandRead, Priority::High,
                     blockAddr(0), 1, nullptr);
        mem->request(TrafficClass::DemandWriteback, Priority::Low,
                     blockAddr(1), 1, nullptr);
        mem->request(TrafficClass::MetaUpdate, Priority::Low,
                     blockAddr(2), 3, nullptr);
        mem->request(TrafficClass::MetaRecord, Priority::Low,
                     blockAddr(3), 2, nullptr);
    });
    events.run();
    const MemCtrlStats &stats = mem->stats();
    EXPECT_EQ(stats.bytesFor(TrafficClass::DemandRead), kBlockBytes);
    EXPECT_EQ(stats.bytesFor(TrafficClass::DemandWriteback),
              kBlockBytes);
    EXPECT_EQ(stats.bytesFor(TrafficClass::MetaUpdate),
              3 * kBlockBytes);
    EXPECT_EQ(stats.bytesFor(TrafficClass::MetaRecord),
              2 * kBlockBytes);
    EXPECT_EQ(stats.totalBytes(), 7 * kBlockBytes);
    EXPECT_EQ(stats.highPrioRequests, 1u);
    EXPECT_EQ(stats.lowPrioRequests, 3u);
}

TEST_P(MemBackendConformance, ResetStatsZeroesEverything)
{
    EventQueue events;
    auto mem = make(events);
    events.schedule(0, [&]() {
        for (int i = 0; i < 10; ++i) {
            mem->request(TrafficClass::MetaLookup, Priority::Low,
                         blockAddr(i), 1, nullptr);
            mem->request(TrafficClass::DemandRead, Priority::High,
                         blockAddr(i + 64), 1, nullptr);
        }
    });
    events.run();
    ASSERT_GT(mem->stats().totalBytes(), 0u);
    mem->resetStats();
    const MemCtrlStats &stats = mem->stats();
    EXPECT_EQ(stats.totalBytes(), 0u);
    EXPECT_EQ(stats.busyCycles, 0u);
    EXPECT_EQ(stats.highPrioRequests, 0u);
    EXPECT_EQ(stats.lowPrioRequests, 0u);
    for (std::size_t c = 0; c < kNumTrafficClasses; ++c)
        EXPECT_EQ(stats.requests[c], 0u);
    EXPECT_EQ(mem->lowPrioDelay().count(), 0u);
    EXPECT_EQ(mem->rowStats().totalAccesses(), 0u);
    EXPECT_DOUBLE_EQ(mem->utilization(1000), 0.0);
}

TEST_P(MemBackendConformance, DemandBeatsMetaUnderSaturation)
{
    EventQueue events;
    auto mem = make(events);
    std::vector<char> completions;
    events.schedule(0, [&]() {
        // All requests hammer one address so every backend serializes
        // them on a single resource (channel 0 / bank 0). The first
        // low occupies it; the demand arriving last must still finish
        // before the queued lows.
        for (int i = 0; i < 4; ++i) {
            mem->request(TrafficClass::MetaLookup, Priority::Low,
                         blockAddr(3), 1,
                         [&](Cycle) { completions.push_back('L'); });
        }
        mem->request(TrafficClass::DemandRead, Priority::High,
                     blockAddr(3), 1,
                     [&](Cycle) { completions.push_back('H'); });
    });
    events.run();
    ASSERT_EQ(completions.size(), 5u);
    const auto high =
        std::find(completions.begin(), completions.end(), 'H');
    ASSERT_NE(high, completions.end());
    // At most the already-in-flight low may precede the demand.
    EXPECT_LE(high - completions.begin(), 1);
}

TEST_P(MemBackendConformance, FunctionalModeCompletesImmediately)
{
    EventQueue events;
    auto mem = make(events, /*functional=*/true);
    bool called = false;
    mem->request(TrafficClass::Prefetch, Priority::Low, blockAddr(5),
                 2, [&](Cycle tick) {
                     called = true;
                     EXPECT_EQ(tick, 0u);
                 });
    EXPECT_TRUE(called);
    EXPECT_EQ(mem->stats().bytesFor(TrafficClass::Prefetch),
              2 * kBlockBytes);
    EXPECT_EQ(mem->stats().busyCycles, 0u);
    EXPECT_EQ(mem->rowStats().totalAccesses(), 0u);
}

TEST_P(MemBackendConformance, UtilizationStaysBounded)
{
    EventQueue events;
    auto mem = make(events);
    Cycle last_done = 0;
    events.schedule(0, [&]() {
        // Deterministic pseudo-random script: stride pattern mixing
        // banks, channels, classes, and burst lengths.
        std::uint64_t block = 1;
        for (int i = 0; i < 64; ++i) {
            block = block * 2862933555777941757ULL + 3037000493ULL;
            const auto cls = (i % 3 == 0) ? TrafficClass::DemandRead
                                          : TrafficClass::MetaRecord;
            const auto prio =
                (i % 3 == 0) ? Priority::High : Priority::Low;
            const std::uint32_t blocks = 1 + (i % 4);
            mem->request(cls, prio, blockAddr(block % (1 << 20)),
                         blocks, [&](Cycle tick) {
                             last_done = std::max(last_done, tick);
                         });
        }
    });
    events.run();
    ASSERT_GT(last_done, 0u);
    // Busy cycles can never exceed elapsed x channels.
    EXPECT_LE(mem->utilization(last_done), 1.0);
    EXPECT_GT(mem->utilization(last_done), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, MemBackendConformance,
    ::testing::Values(BackendCase{"fixed", MemBackendKind::Fixed},
                      BackendCase{"queued", MemBackendKind::Queued},
                      BackendCase{"dram", MemBackendKind::Dram}),
    [](const ::testing::TestParamInfo<BackendCase> &backend_case) {
        return backend_case.param.name;
    });

// ----------------------------------------------------------------
// Unit half of the bit-identity regression: FixedLatencyBackend must
// match the pre-backend MemController tick-for-tick, stat-for-stat,
// on a deterministic request script.

struct ScriptStep
{
    Cycle at;
    TrafficClass cls;
    Priority prio;
    std::uint32_t blocks;
};

const ScriptStep kIdentityScript[] = {
    {0, TrafficClass::DemandRead, Priority::High, 1},
    {0, TrafficClass::MetaLookup, Priority::Low, 1},
    {3, TrafficClass::MetaRecord, Priority::Low, 4},
    {3, TrafficClass::DemandRead, Priority::High, 1},
    {50, TrafficClass::DemandWriteback, Priority::Low, 1},
    {190, TrafficClass::MetaUpdate, Priority::Low, 2},
    {200, TrafficClass::DemandRead, Priority::High, 1},
    {201, TrafficClass::Prefetch, Priority::Low, 1},
    {400, TrafficClass::MetaLookup, Priority::Low, 1},
};

template <typename RequestFn>
std::vector<Cycle>
runIdentityScript(EventQueue &events, RequestFn &&request)
{
    auto ticks = std::make_shared<std::vector<Cycle>>();
    for (const ScriptStep &step : kIdentityScript) {
        events.schedule(step.at, [&request, step, ticks]() {
            request(step.cls, step.prio, step.blocks,
                    [ticks](Cycle tick) { ticks->push_back(tick); });
        });
    }
    events.run();
    return *ticks;
}

TEST(FixedBackendIdentity, MatchesMemControllerExactly)
{
    EventQueue ref_events;
    MemController ref(ref_events, MemCtrlConfig{});
    const auto ref_ticks = runIdentityScript(
        ref_events, [&](TrafficClass cls, Priority prio,
                        std::uint32_t blocks, TimedCallback done) {
            ref.request(cls, prio, blocks, std::move(done));
        });

    EventQueue events;
    MemBackendSpec spec;  // Default: fixed.
    auto mem = makeMemBackend(events, spec, MemCtrlConfig{});
    const auto ticks = runIdentityScript(
        events, [&](TrafficClass cls, Priority prio,
                    std::uint32_t blocks, TimedCallback done) {
            mem->request(cls, prio, blockAddr(blocks * 977), blocks,
                         std::move(done));
        });

    EXPECT_EQ(ticks, ref_ticks);

    const MemCtrlStats &a = ref.stats();
    const MemCtrlStats &b = mem->stats();
    for (std::size_t c = 0; c < kNumTrafficClasses; ++c) {
        EXPECT_EQ(a.requests[c], b.requests[c]) << "class " << c;
        EXPECT_EQ(a.bytes[c], b.bytes[c]) << "class " << c;
    }
    EXPECT_EQ(a.highPrioRequests, b.highPrioRequests);
    EXPECT_EQ(a.lowPrioRequests, b.lowPrioRequests);
    EXPECT_EQ(a.busyCycles, b.busyCycles);

    const LinearHistogram &ha = ref.lowPrioDelay();
    const LinearHistogram &hb = mem->lowPrioDelay();
    ASSERT_EQ(ha.numBuckets(), hb.numBuckets());
    EXPECT_EQ(ha.count(), hb.count());
    for (std::size_t i = 0; i < ha.numBuckets(); ++i)
        EXPECT_EQ(ha.bucketCount(i), hb.bucketCount(i))
            << "bucket " << i;
}

// With channels=1 the queued backend must also be cycle-identical to
// MemController (it is the same algorithm, per-channel).
TEST(FixedBackendIdentity, SingleChannelQueuedMatchesMemController)
{
    EventQueue ref_events;
    MemController ref(ref_events, MemCtrlConfig{});
    const auto ref_ticks = runIdentityScript(
        ref_events, [&](TrafficClass cls, Priority prio,
                        std::uint32_t blocks, TimedCallback done) {
            ref.request(cls, prio, blocks, std::move(done));
        });

    EventQueue events;
    MemBackendSpec spec;
    spec.kind = MemBackendKind::Queued;
    spec.channels = 1;
    auto mem = makeMemBackend(events, spec, MemCtrlConfig{});
    const auto ticks = runIdentityScript(
        events, [&](TrafficClass cls, Priority prio,
                    std::uint32_t blocks, TimedCallback done) {
            // Varying addresses all map to the single channel.
            mem->request(cls, prio, blockAddr(blocks * 31), blocks,
                         std::move(done));
        });

    EXPECT_EQ(ticks, ref_ticks);
    EXPECT_EQ(ref.stats().busyCycles, mem->stats().busyCycles);
    EXPECT_EQ(ref.lowPrioDelay().count(),
              mem->lowPrioDelay().count());
    EXPECT_EQ(ref.lowPrioDelay().mean(), mem->lowPrioDelay().mean());
}

} // namespace
} // namespace stms
