/** @file Unit tests for the trace-driven core model. */

#include <gtest/gtest.h>

#include "sim/core.hh"

namespace stms
{
namespace
{

struct Fixture
{
    explicit Fixture(std::vector<TraceRecord> records)
        : trace(std::move(records))
    {
        config.numCores = 1;
        config.l1.sizeBytes = 4 * 1024;
        config.l2.sizeBytes = 64 * 1024;
        memory = std::make_unique<MemorySystem>(events, config);
        core = std::make_unique<TraceCore>(events, *memory, 0,
                                           core_config, trace);
    }

    Cycle
    run()
    {
        core->start();
        return events.run();
    }

    std::vector<TraceRecord> trace;
    EventQueue events;
    MemorySystemConfig config;
    CoreConfig core_config;
    std::unique_ptr<MemorySystem> memory;
    std::unique_ptr<TraceCore> core;
};

TraceRecord
rec(Addr addr, std::uint16_t think, bool write = false,
    bool dependent = false)
{
    TraceRecord record;
    record.addr = addr;
    record.think = think;
    record.flags = static_cast<std::uint8_t>(
        (write ? TraceRecord::kWrite : 0) |
        (dependent ? TraceRecord::kDependent : 0));
    return record;
}

TEST(TraceCore, EmptyTraceFinishesImmediately)
{
    Fixture f({});
    bool finished = false;
    f.core->onFinished([&]() { finished = true; });
    f.run();
    EXPECT_TRUE(finished);
    EXPECT_TRUE(f.core->done());
    EXPECT_EQ(f.core->stats().records, 0u);
}

TEST(TraceCore, CountsInstructionsAndRecords)
{
    Fixture f({rec(0x1000, 10), rec(0x1000, 20), rec(0x1000, 5)});
    f.run();
    EXPECT_EQ(f.core->stats().records, 3u);
    // think + 1 per record.
    EXPECT_EQ(f.core->stats().instructions, 10u + 20u + 5u + 3u);
}

TEST(TraceCore, IndependentMissesOverlap)
{
    // Two independent misses to distinct blocks: total time should be
    // far less than two serial memory latencies.
    Fixture f({rec(0x100000, 1), rec(0x200000, 1)});
    f.run();
    EXPECT_LT(f.core->stats().finishTick, 2 * 189u);
    EXPECT_GE(f.core->stats().finishTick, 189u);
}

TEST(TraceCore, DependentMissSerializes)
{
    Fixture f({rec(0x100000, 1),
               rec(0x200000, 1, false, /*dependent=*/true)});
    f.run();
    // The second access waits for the first's data (~189) plus its own
    // latency.
    EXPECT_GE(f.core->stats().finishTick, 2 * 189u);
    EXPECT_GE(f.core->stats().depStalls, 1u);
}

TEST(TraceCore, WindowLimitsOutstandingMisses)
{
    std::vector<TraceRecord> records;
    for (int i = 0; i < 64; ++i)
        records.push_back(rec(0x100000 + static_cast<Addr>(i) * 4096,
                              0));
    Fixture f(std::move(records));
    f.core_config.window = 4;
    f.core = std::make_unique<TraceCore>(f.events, *f.memory, 0,
                                         f.core_config, f.trace);
    f.run();
    EXPECT_GT(f.core->stats().windowStalls, 0u);
    EXPECT_TRUE(f.core->done());
}

TEST(TraceCore, L1HitsDoNotStall)
{
    // Same block over and over: first access misses, the rest hit L1.
    std::vector<TraceRecord> records;
    for (int i = 0; i < 100; ++i)
        records.push_back(rec(0x1000, 10));
    Fixture f(std::move(records));
    f.run();
    // ~100 * 10 think cycles + one memory latency.
    EXPECT_LT(f.core->stats().finishTick, 100 * 10 + 400u);
    // Records issued while the first fill is outstanding merge into
    // its MSHR; everything after the fill hits the L1.
    EXPECT_GE(f.memory->stats().l1Hits, 75u);
}

TEST(TraceCore, WritesDoNotBlockProgress)
{
    Fixture f({rec(0x100000, 1, /*write=*/true), rec(0x1000, 1)});
    f.run();
    // The write retires through the write buffer; the following L1
    // access completes long before the write's fill returns.
    EXPECT_TRUE(f.core->done());
    EXPECT_EQ(f.memory->stats().offchipWrites, 1u);
}

TEST(TraceCore, ThinkTimeSetsPace)
{
    std::vector<TraceRecord> records;
    for (int i = 0; i < 50; ++i)
        records.push_back(rec(0x1000, 100));
    Fixture f(std::move(records));
    f.run();
    EXPECT_GE(f.core->stats().finishTick, 50 * 100u);
}

TEST(TraceCore, FinishCallbackFiresOnce)
{
    Fixture f({rec(0x100000, 1)});
    int calls = 0;
    f.core->onFinished([&]() { ++calls; });
    f.run();
    EXPECT_EQ(calls, 1);
}

TEST(TraceCore, IssueCallbackPerRecord)
{
    Fixture f({rec(0x1000, 1), rec(0x1040, 1), rec(0x1080, 1)});
    std::uint64_t issues = 0;
    f.core->onIssue([&]() { ++issues; });
    f.run();
    EXPECT_EQ(issues, 3u);
    EXPECT_EQ(f.core->issued(), 3u);
}

} // namespace
} // namespace stms
