/**
 * @file
 * Unit tests for --mem-backend spec parsing and canonicalization.
 * canonical() joins the result-store fingerprint, so the invariants
 * here (defaults canonicalize away, spellings collapse, errors are
 * rejected early) protect fingerprint stability across releases.
 */

#include <gtest/gtest.h>

#include "sim/mem_backend.hh"

namespace stms
{
namespace
{

MemBackendSpec
parseOk(const std::string &text)
{
    MemBackendSpec spec;
    std::string error;
    const bool ok = parseMemBackendSpec(text, spec, error);
    EXPECT_TRUE(ok) << text << ": " << error;
    return spec;
}

std::string
parseFail(const std::string &text)
{
    MemBackendSpec spec;
    std::string error;
    EXPECT_FALSE(parseMemBackendSpec(text, spec, error)) << text;
    EXPECT_FALSE(error.empty());
    return error;
}

TEST(MemBackendSpec, DefaultSpecIsCanonicalFixed)
{
    MemBackendSpec spec;
    EXPECT_TRUE(spec.isDefault());
    EXPECT_EQ(spec.canonical(), "fixed");
    EXPECT_EQ(parseOk("fixed").canonical(), "fixed");
}

TEST(MemBackendSpec, KindsParse)
{
    EXPECT_EQ(parseOk("fixed").kind, MemBackendKind::Fixed);
    EXPECT_EQ(parseOk("queued").kind, MemBackendKind::Queued);
    EXPECT_EQ(parseOk("dram").kind, MemBackendKind::Dram);
    EXPECT_FALSE(parseOk("queued").isDefault());
    EXPECT_FALSE(parseOk("dram").isDefault());
}

TEST(MemBackendSpec, ExplicitDefaultsCanonicalizeAway)
{
    // Spelling out a default value must fingerprint identically to
    // omitting it.
    EXPECT_EQ(parseOk("queued,channels=2").canonical(), "queued");
    EXPECT_EQ(parseOk("dram,ranks=1,banks=8,row-bytes=8192").canonical(),
              "dram");
    EXPECT_EQ(parseOk("dram,trcd=60,tcas=60,trp=60,tras=160,policy=open")
                  .canonical(),
              "dram");
    EXPECT_EQ(parseOk("fixed,latency=180,transfer=9").canonical(),
              "fixed");
    EXPECT_TRUE(parseOk("fixed,latency=180").isDefault());
}

TEST(MemBackendSpec, NonDefaultsSurviveInFixedKeyOrder)
{
    EXPECT_EQ(parseOk("queued,channels=4").canonical(),
              "queued,channels=4");
    EXPECT_EQ(parseOk("dram,policy=closed,banks=16").canonical(),
              "dram,banks=16,policy=closed");
    // Key order in the input must not matter.
    EXPECT_EQ(parseOk("dram,banks=16,policy=closed").canonical(),
              parseOk("dram,policy=closed,banks=16").canonical());
    EXPECT_EQ(parseOk("fixed,latency=90").canonical(),
              "fixed,latency=90");
    EXPECT_EQ(parseOk("dram,channels=2,tras=200").canonical(),
              "dram,channels=2,tras=200");
}

TEST(MemBackendSpec, ParsedFieldsReachTheBackendConfig)
{
    const MemBackendSpec spec =
        parseOk("dram,channels=2,banks=16,row-bytes=4096,trcd=45,"
                "policy=closed");
    EXPECT_EQ(spec.kind, MemBackendKind::Dram);
    EXPECT_EQ(spec.channels, 2u);
    EXPECT_EQ(spec.banksPerRank, 16u);
    EXPECT_EQ(spec.rowBytes, 4096u);
    EXPECT_EQ(spec.tRcd, 45u);
    EXPECT_EQ(spec.policy, PagePolicy::Closed);

    EventQueue events;
    auto mem = makeMemBackend(events, spec, MemCtrlConfig{});
    EXPECT_STREQ(mem->kindName(), "dram");
    EXPECT_EQ(mem->channels(), 2u);
}

TEST(MemBackendSpec, RejectsBadInput)
{
    parseFail("");
    parseFail("sram");
    parseFail("fixed,channels=2");      // Fixed has one channel.
    parseFail("fixed,trcd=60");         // DRAM-only key.
    parseFail("queued,policy=open");    // DRAM-only key.
    parseFail("dram,latency=100");      // Use trcd/tcas/trp instead.
    parseFail("queued,channels=0");     // Zero is not a count.
    parseFail("queued,channels=two");   // Junk value.
    parseFail("dram,row-bytes=100");    // Not a multiple of 64.
    parseFail("dram,policy=sideways");
    parseFail("dram,frobnicate=1");     // Unknown key.
    parseFail("queued,channels");       // Missing '='.
    parseFail("queued,=2");             // Missing key.
}

TEST(MemBackendSpec, FailedParseLeavesSpecUntouched)
{
    MemBackendSpec spec;
    spec.kind = MemBackendKind::Queued;
    spec.channels = 8;
    std::string error;
    ASSERT_FALSE(parseMemBackendSpec("dram,banks=zero", spec, error));
    EXPECT_EQ(spec.kind, MemBackendKind::Queued);
    EXPECT_EQ(spec.channels, 8u);
}

} // namespace
} // namespace stms
