/** @file Unit tests for replacement policies, incl. TEST_P sweeps. */

#include <gtest/gtest.h>

#include <set>

#include "sim/replacement.hh"

namespace stms
{
namespace
{

TEST(Lru, VictimIsLeastRecentlyTouched)
{
    ReplacementState state(ReplPolicy::Lru, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        state.touch(w);
    state.touch(0);  // 1 is now LRU.
    EXPECT_EQ(state.victim(), 1u);
    state.touch(1);
    EXPECT_EQ(state.victim(), 2u);
}

TEST(Lru, RecencyRankOrdersWays)
{
    ReplacementState state(ReplPolicy::Lru, 4);
    state.touch(2);
    state.touch(0);
    state.touch(3);
    state.touch(1);
    EXPECT_EQ(state.recencyRank(1), 0u);  // MRU.
    EXPECT_EQ(state.recencyRank(3), 1u);
    EXPECT_EQ(state.recencyRank(0), 2u);
    EXPECT_EQ(state.recencyRank(2), 3u);  // LRU.
}

TEST(TreePlru, VictimIsUntouchedWay)
{
    ReplacementState state(ReplPolicy::TreePlru, 4);
    // Touch ways 1, 2, 3: the root ends up pointing at the left
    // subtree and node1 at way 0 — the never-touched way.
    state.touch(1);
    state.touch(2);
    state.touch(3);
    EXPECT_EQ(state.victim(), 0u);
}

TEST(TreePlru, TouchedWayNotImmediateVictim)
{
    ReplacementState state(ReplPolicy::TreePlru, 8);
    for (int round = 0; round < 32; ++round) {
        const std::uint32_t way = static_cast<std::uint32_t>(round) % 8;
        state.touch(way);
        EXPECT_NE(state.victim(), way);
    }
}

TEST(Random, VictimsCoverAllWays)
{
    ReplacementState state(ReplPolicy::Random, 4, 99);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(state.victim());
    EXPECT_EQ(seen.size(), 4u);
}

class AllPolicies : public ::testing::TestWithParam<ReplPolicy>
{
};

TEST_P(AllPolicies, VictimAlwaysInRange)
{
    ReplacementState state(GetParam(), 8, 7);
    for (int i = 0; i < 500; ++i) {
        state.touch(static_cast<std::uint32_t>(i * 7) % 8);
        EXPECT_LT(state.victim(), 8u);
    }
}

TEST_P(AllPolicies, SingleWayAlwaysVictim)
{
    ReplacementState state(GetParam(), 1);
    state.touch(0);
    EXPECT_EQ(state.victim(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, AllPolicies,
                         ::testing::Values(ReplPolicy::Lru,
                                           ReplPolicy::Random,
                                           ReplPolicy::TreePlru));

TEST(TreePlruDeath, RequiresPowerOfTwoWays)
{
    EXPECT_DEATH(ReplacementState(ReplPolicy::TreePlru, 3),
                 "power-of-two");
}

} // namespace
} // namespace stms
