/**
 * @file
 * Golden-timing tests for the DRAM backend. The cycle numbers are
 * computed by hand from the default timing (tRCD=tCAS=tRP=60,
 * tRAS=160, 9 cycles/block burst, 8192-byte rows) and mirror the
 * worked example in docs/ARCHITECTURE.md — keep the two in sync.
 *
 * Address map (1 channel, 8 banks, 128 blocks/row):
 *   block 0     -> bank 0, row 0
 *   block 1     -> bank 0, row 0   (row hit after block 0)
 *   block 128   -> bank 1, row 0   (bank-parallel with block 0)
 *   block 16384 -> bank 0, row 16  (row conflict with row 0)
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "sim/mem_dram.hh"

namespace stms
{
namespace
{

DramConfig
goldenConfig()
{
    return DramConfig{};  // Defaults; MemCtrlConfig burst = 9.
}

Addr
blockAddr(std::uint64_t n)
{
    return n * kBlockBytes;
}

struct Completion
{
    char tag;
    Cycle tick;
};

/** Issue the canonical A/B/C/D script at t=0 and collect finishes. */
std::vector<Completion>
runGoldenScript(DramBackend &mem, EventQueue &events)
{
    auto done = std::make_shared<std::vector<Completion>>();
    auto cb = [done](char tag) {
        return [done, tag](Cycle tick) {
            done->push_back({tag, tick});
        };
    };
    events.schedule(0, [&mem, cb]() {
        mem.request(TrafficClass::DemandRead, Priority::High,
                    blockAddr(0), 1, cb('A'));
        mem.request(TrafficClass::DemandRead, Priority::High,
                    blockAddr(1), 1, cb('B'));
        mem.request(TrafficClass::DemandRead, Priority::High,
                    blockAddr(128), 1, cb('C'));
        mem.request(TrafficClass::DemandRead, Priority::High,
                    blockAddr(16384), 1, cb('D'));
    });
    events.run();
    return *done;
}

TEST(DramTiming, OpenPageGoldenSequence)
{
    EventQueue events;
    DramBackend mem(events, goldenConfig());
    const auto done = runGoldenScript(mem, events);

    // A (bank 0 empty): tRCD+tCAS = 120, +9 burst  -> 129.
    // C (bank 1 empty): data at 120, bus queued behind A -> 138.
    // B (row hit, issued when bank 0 frees at 120): 120+60+9 -> 189.
    // D (row conflict, issued at 180): precharge at 180 (tRAS=160
    //   already satisfied), activate at 240, data at 360, +9 -> 369.
    ASSERT_EQ(done.size(), 4u);
    EXPECT_EQ(done[0].tag, 'A');
    EXPECT_EQ(done[0].tick, 129u);
    EXPECT_EQ(done[1].tag, 'C');
    EXPECT_EQ(done[1].tick, 138u);
    EXPECT_EQ(done[2].tag, 'B');
    EXPECT_EQ(done[2].tick, 189u);
    EXPECT_EQ(done[3].tag, 'D');
    EXPECT_EQ(done[3].tick, 369u);

    const RowBufferStats row = mem.rowStats();
    const auto demand =
        static_cast<std::size_t>(TrafficClass::DemandRead);
    EXPECT_EQ(row.hits[demand], 1u);       // B
    EXPECT_EQ(row.empties[demand], 2u);    // A, C
    EXPECT_EQ(row.conflicts[demand], 1u);  // D
    EXPECT_EQ(row.totalAccesses(), 4u);
}

TEST(DramTiming, TrasDelaysEarlyPrecharge)
{
    EventQueue events;
    DramBackend mem(events, goldenConfig());
    std::vector<Cycle> ticks;
    events.schedule(0, [&]() {
        mem.request(TrafficClass::DemandRead, Priority::High,
                    blockAddr(0), 1,
                    [&](Cycle tick) { ticks.push_back(tick); });
        mem.request(TrafficClass::DemandRead, Priority::High,
                    blockAddr(16384), 1,
                    [&](Cycle tick) { ticks.push_back(tick); });
    });
    events.run();
    // The conflict is considered when bank 0 frees at 120, but the
    // row activated at 0 cannot precharge before tRAS=160: precharge
    // at 160, activate at 220, data at 340, +9 burst -> 349.
    ASSERT_EQ(ticks.size(), 2u);
    EXPECT_EQ(ticks[0], 129u);
    EXPECT_EQ(ticks[1], 349u);
}

TEST(DramTiming, ClosedPagePrechargesBetweenAccesses)
{
    EventQueue events;
    DramConfig config = goldenConfig();
    config.policy = PagePolicy::Closed;
    DramBackend mem(events, config);
    std::vector<Cycle> ticks;
    events.schedule(0, [&]() {
        for (std::uint64_t blk : {0ULL, 1ULL}) {
            mem.request(TrafficClass::DemandRead, Priority::High,
                        blockAddr(blk), 1,
                        [&](Cycle tick) { ticks.push_back(tick); });
        }
    });
    events.run();
    // Block 0: empty access, done 129; auto-precharge keeps the bank
    // busy until 120+tRP=180. Block 1 would be a row hit under the
    // open policy (189) but pays the full empty access again:
    // data at 180+120=300, +9 -> 309.
    ASSERT_EQ(ticks.size(), 2u);
    EXPECT_EQ(ticks[0], 129u);
    EXPECT_EQ(ticks[1], 309u);
    const RowBufferStats row = mem.rowStats();
    const auto demand =
        static_cast<std::size_t>(TrafficClass::DemandRead);
    EXPECT_EQ(row.hits[demand], 0u);
    EXPECT_EQ(row.empties[demand], 2u);
}

TEST(DramTiming, ChannelsServeBlocksInParallel)
{
    EventQueue events;
    DramConfig config = goldenConfig();
    config.channels = 2;
    DramBackend mem(events, config);
    std::vector<Cycle> ticks;
    events.schedule(0, [&]() {
        for (std::uint64_t blk = 0; blk < 4; ++blk) {
            mem.request(TrafficClass::DemandRead, Priority::High,
                        blockAddr(blk), 1,
                        [&](Cycle tick) { ticks.push_back(tick); });
        }
    });
    events.run();
    // Even blocks on channel 0, odd on channel 1; within a channel
    // the second block is a row hit at local block 1 but must wait
    // for the bank (120) -> data 180, done 189.
    ASSERT_EQ(ticks.size(), 4u);
    EXPECT_EQ(ticks[0], 129u);
    EXPECT_EQ(ticks[1], 129u);
    EXPECT_EQ(ticks[2], 189u);
    EXPECT_EQ(ticks[3], 189u);
    EXPECT_EQ(mem.channels(), 2u);
}

TEST(DramTiming, MetaStreamRowLocalityBeatsRandomDemand)
{
    // A sequential history-buffer style stream should be almost all
    // row hits; a bank-stride demand stream should be all conflicts.
    EventQueue events;
    DramBackend mem(events, goldenConfig());
    events.schedule(0, [&]() {
        for (std::uint64_t i = 0; i < 32; ++i) {
            mem.request(TrafficClass::MetaRecord, Priority::Low,
                        blockAddr(i), 1, nullptr);
        }
    });
    events.run();
    events.schedule(0, [&]() {
        // Same bank, different row every time.
        for (std::uint64_t i = 1; i <= 8; ++i) {
            mem.request(TrafficClass::DemandRead, Priority::High,
                        blockAddr(i * 16384), 1, nullptr);
        }
    });
    events.run();
    const RowBufferStats row = mem.rowStats();
    EXPECT_GT(row.metaHitRate(), 0.9);
    EXPECT_EQ(row.demandHitRate(), 0.0);
    EXPECT_EQ(row.accessesFor(TrafficClass::MetaRecord), 32u);
    EXPECT_EQ(row.accessesFor(TrafficClass::DemandRead), 8u);
}

TEST(DramTiming, BusyCyclesNeverExceedElapsedTimesChannels)
{
    for (const std::uint32_t channels : {1u, 2u, 4u}) {
        EventQueue events;
        DramConfig config = goldenConfig();
        config.channels = channels;
        DramBackend mem(events, config);
        Cycle last = 0;
        events.schedule(0, [&]() {
            std::uint64_t state = 12345;
            for (int i = 0; i < 200; ++i) {
                state = state * 6364136223846793005ULL + 1442695040888963407ULL;
                const std::uint32_t blocks = 1 + (i % 5);
                mem.request((i % 4 == 0) ? TrafficClass::DemandRead
                                         : TrafficClass::MetaLookup,
                            (i % 4 == 0) ? Priority::High
                                         : Priority::Low,
                            blockAddr(state % (1 << 22)), blocks,
                            [&](Cycle tick) {
                                last = std::max(last, tick);
                            });
            }
        });
        events.run();
        ASSERT_GT(last, 0u);
        EXPECT_LE(mem.stats().busyCycles,
                  static_cast<Cycle>(last) * channels)
            << "channels=" << channels;
        EXPECT_LE(mem.utilization(last), 1.0);
    }
}

} // namespace
} // namespace stms
