/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace stms
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.scheduleAt(30, [&]() { order.push_back(3); });
    queue.scheduleAt(10, [&]() { order.push_back(1); });
    queue.scheduleAt(20, [&]() { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInInsertionOrder)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        queue.scheduleAt(5, [&order, i]() { order.push_back(i); });
    queue.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NowAdvancesWithExecution)
{
    EventQueue queue;
    Cycle seen = 0;
    queue.scheduleAt(42, [&]() { seen = queue.now(); });
    queue.run();
    EXPECT_EQ(seen, 42u);
    EXPECT_EQ(queue.now(), 42u);
}

TEST(EventQueue, ScheduleRelativeDelay)
{
    EventQueue queue;
    Cycle seen = 0;
    queue.scheduleAt(10, [&]() {
        queue.schedule(5, [&]() { seen = queue.now(); });
    });
    queue.run();
    EXPECT_EQ(seen, 15u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue queue;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 100)
            queue.schedule(1, chain);
    };
    queue.schedule(0, chain);
    queue.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(queue.executed(), 100u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue queue;
    int ran = 0;
    queue.scheduleAt(10, [&]() { ++ran; });
    queue.scheduleAt(100, [&]() { ++ran; });
    queue.runUntil(50);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(queue.pending(), 1u);
    queue.run();
    EXPECT_EQ(ran, 2);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue queue;
    queue.scheduleAt(100, []() {});
    queue.run();
    EXPECT_DEATH(queue.scheduleAt(50, []() {}), "past");
}

} // namespace
} // namespace stms
